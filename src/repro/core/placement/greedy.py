"""Greedy network-aware placement — Algorithm 1 of the paper (§5).

The algorithm walks the application's transfers in descending order of
volume and places each pair of tasks on the machine pair whose path offers
the highest rate, given what has already been placed:

* if one endpoint is already placed, only paths touching its machine are
  candidates;
* intra-machine paths have essentially infinite rate, so the heuristic
  naturally colocates heavily communicating tasks when CPU allows;
* the candidate rate accounts for connections already placed in this round,
  under either the hose model (connections share the source's egress) or the
  pipe model (connections share the specific path) — see
  :func:`repro.core.rate_model.effective_rate`.

Tasks that never communicate are placed last on the machines with the most
free CPU.  The result is not guaranteed optimal (Figure 9 shows a
counter-example), but §5 reports it within 13% (median) of the optimum
while scaling far better.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.network_profile import NetworkProfile
from repro.core.placement.base import ClusterState, Placement, Placer, validate_placement
from repro.core.rate_model import ConnectionLoad, effective_rate
from repro.errors import PlacementError
from repro.workloads.application import Application

_EPS = 1e-9


class GreedyPlacer(Placer):
    """Algorithm 1: greedy network-aware placement.

    Args:
        model: ``"hose"`` or ``"pipe"`` — how already-placed connections
            affect a candidate path's rate (the paper's clouds are hose).
        prefer_colocation: break rate ties in favour of placing both tasks
            on the same machine (intra-machine rates are typically infinite,
            so this only matters when the profile's intra-VM rate is finite).
    """

    name = "choreo-greedy"

    def __init__(self, model: str = "hose", prefer_colocation: bool = True):
        if model not in ("hose", "pipe"):
            raise PlacementError(f"unknown rate model {model!r}")
        self.model = model
        self.prefer_colocation = prefer_colocation

    # ------------------------------------------------------------------ API
    def place(
        self,
        app: Application,
        cluster: ClusterState,
        profile: Optional[NetworkProfile] = None,
    ) -> Placement:
        if profile is None:
            raise PlacementError("the greedy placer needs a network profile")
        self.check_feasible(app, cluster)

        machines = cluster.machine_names()
        for machine in machines:
            if machine not in profile.vms:
                raise PlacementError(
                    f"machine {machine!r} is not covered by the network profile"
                )

        assignments: Dict[str, str] = {}
        free_cpu = {m: cluster.available_cpu(m) for m in machines}
        load = ConnectionLoad()

        def cpu_fits(task_name: str, machine: str, pending_same: float = 0.0) -> bool:
            return app.cpu_demand(task_name) + pending_same <= free_cpu[machine] + _EPS

        def assign(task_name: str, machine: str) -> None:
            assignments[task_name] = machine
            free_cpu[machine] -= app.cpu_demand(task_name)

        # Line 2: walk transfers in descending order of volume.
        for src_task, dst_task, _volume in app.transfers():
            src_placed = assignments.get(src_task)
            dst_placed = assignments.get(dst_task)

            if src_placed is not None and dst_placed is not None:
                # Both endpoints already pinned; just account for the
                # connection so later rate estimates see it.
                load.add(src_placed, dst_placed)
                continue

            candidates = self._candidate_paths(
                app, src_task, dst_task, src_placed, dst_placed,
                machines, cpu_fits,
            )
            if not candidates:
                raise PlacementError(
                    f"no CPU-feasible machine pair for transfer "
                    f"{src_task!r} -> {dst_task!r} of application {app.name!r}"
                )

            best = self._pick_best(candidates, profile, load)
            src_machine, dst_machine = best
            if src_placed is None:
                assign(src_task, src_machine)
            if dst_placed is None and dst_task not in assignments:
                assign(dst_task, dst_machine)
            load.add(src_machine, dst_machine)

        # Tasks with no transfers at all: spread over the freest machines.
        for task in app.task_names:
            if task in assignments:
                continue
            feasible = [m for m in machines if cpu_fits(task, m)]
            if not feasible:
                raise PlacementError(
                    f"no machine has CPU for task {task!r} of application {app.name!r}"
                )
            choice = max(feasible, key=lambda m: (free_cpu[m], m))
            assign(task, choice)

        placement = Placement(app_name=app.name, assignments=assignments)
        validate_placement(placement, app, cluster)
        return placement

    # ------------------------------------------------------------ internals
    def _candidate_paths(
        self,
        app: Application,
        src_task: str,
        dst_task: str,
        src_placed: Optional[str],
        dst_placed: Optional[str],
        machines: List[str],
        cpu_fits,
    ) -> List[Tuple[str, str]]:
        """Lines 3-11: enumerate CPU-feasible candidate machine pairs."""
        candidates: List[Tuple[str, str]] = []
        if src_placed is not None:
            # Source pinned: paths k -> N for all machines N (line 4).
            for dst_machine in machines:
                if src_placed == dst_machine:
                    if cpu_fits(dst_task, dst_machine):
                        candidates.append((src_placed, dst_machine))
                elif cpu_fits(dst_task, dst_machine):
                    candidates.append((src_placed, dst_machine))
        elif dst_placed is not None:
            # Destination pinned: paths M -> l for all machines M (line 6).
            for src_machine in machines:
                if cpu_fits(src_task, src_machine):
                    candidates.append((src_machine, dst_placed))
        else:
            # Neither pinned: all machine pairs, including same-machine
            # placements (lines 7-8).
            for src_machine in machines:
                for dst_machine in machines:
                    if src_machine == dst_machine:
                        demand = app.cpu_demand(src_task) + app.cpu_demand(dst_task)
                        if cpu_fits(src_task, src_machine, pending_same=app.cpu_demand(dst_task)):
                            candidates.append((src_machine, dst_machine))
                    else:
                        if cpu_fits(src_task, src_machine) and cpu_fits(dst_task, dst_machine):
                            candidates.append((src_machine, dst_machine))
        return candidates

    def _pick_best(
        self,
        candidates: List[Tuple[str, str]],
        profile: NetworkProfile,
        load: ConnectionLoad,
    ) -> Tuple[str, str]:
        """Lines 12-14: choose the candidate path with the highest rate."""
        def sort_key(pair: Tuple[str, str]):
            src, dst = pair
            rate = effective_rate(profile, src, dst, load, model=self.model)
            colocated = 1 if (self.prefer_colocation and src == dst) else 0
            # Highest rate first, then colocation, then deterministic names.
            return (-rate, -colocated, src, dst)

        return min(candidates, key=sort_key)
