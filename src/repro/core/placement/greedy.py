"""Greedy network-aware placement — Algorithm 1 of the paper (§5).

The algorithm walks the application's transfers in descending order of
volume and places each pair of tasks on the machine pair whose path offers
the highest rate, given what has already been placed:

* if one endpoint is already placed, only paths touching its machine are
  candidates;
* intra-machine paths have essentially infinite rate, so the heuristic
  naturally colocates heavily communicating tasks when CPU allows;
* the candidate rate accounts for connections already placed in this round,
  under either the hose model (connections share the source's egress) or the
  pipe model (connections share the specific path) — see
  :func:`repro.core.rate_model.effective_rate`.

Tasks that never communicate are placed last on the machines with the most
free CPU.  The result is not guaranteed optimal (Figure 9 shows a
counter-example), but §5 reports it within 13% (median) of the optimum
while scaling far better.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.network_profile import NetworkProfile
from repro.core.placement.base import ClusterState, Placement, Placer, validate_placement
from repro.core.rate_model import ConnectionLoad, EffectiveRateTable, effective_rate
from repro.errors import PlacementError
from repro.workloads.application import Application

_EPS = 1e-9

_default_rate_cache = True


def set_default_rate_cache(enabled: bool) -> bool:
    """Default for ``GreedyPlacer(use_rate_cache=None)``; returns the old value.

    Disabling it restores the pre-optimisation behaviour (every candidate's
    :func:`~repro.core.rate_model.effective_rate` recomputed on every
    transfer); the switch exists for A/B benchmarking and debugging.
    """
    global _default_rate_cache
    previous = _default_rate_cache
    _default_rate_cache = bool(enabled)
    return previous


def greedy_incumbent(
    app: Application,
    cluster: ClusterState,
    profile: NetworkProfile,
    model: str = "hose",
) -> Optional[Placement]:
    """A greedy placement for use as a MILP warm start, or ``None``.

    Greedy can dead-end on CPU packing (it commits machines transfer by
    transfer and never backtracks) on instances where a feasible assignment
    exists, so failure here must not be fatal: callers treat ``None`` as
    "proceed cold".
    """
    try:
        return GreedyPlacer(model=model).place(app, cluster, profile)
    except PlacementError:
        return None


def machine_rate_scores(
    profile: NetworkProfile,
    machines: List[str],
    model: str = "hose",
) -> Dict[str, float]:
    """Each machine's best greedy effective rate to any peer, nothing placed.

    This is the score Algorithm 1 would use for the machine's first
    connection; the ILP's ``candidate_k`` restriction ranks machines by it.
    """
    load = ConnectionLoad()
    scores: Dict[str, float] = {}
    for machine in machines:
        best = 0.0
        for other in machines:
            if other == machine:
                continue
            best = max(
                best, effective_rate(profile, machine, other, load, model=model)
            )
        scores[machine] = best
    return scores


class GreedyPlacer(Placer):
    """Algorithm 1: greedy network-aware placement.

    Args:
        model: ``"hose"`` or ``"pipe"`` — how already-placed connections
            affect a candidate path's rate (the paper's clouds are hose).
        prefer_colocation: break rate ties in favour of placing both tasks
            on the same machine (intra-machine rates are typically infinite,
            so this only matters when the profile's intra-VM rate is finite).
        use_rate_cache: keep candidate rates in an incrementally invalidated
            :class:`~repro.core.rate_model.EffectiveRateTable` instead of
            recomputing every candidate on every transfer.  ``None`` uses
            the module default (see :func:`set_default_rate_cache`); the
            placement is identical either way.
    """

    name = "choreo-greedy"

    def __init__(
        self,
        model: str = "hose",
        prefer_colocation: bool = True,
        use_rate_cache: Optional[bool] = None,
    ):
        if model not in ("hose", "pipe"):
            raise PlacementError(f"unknown rate model {model!r}")
        self.model = model
        self.prefer_colocation = prefer_colocation
        self.use_rate_cache = use_rate_cache
        #: Hit/miss counters of the rate table used by the last
        #: :meth:`place` call (None when the cache was disabled).
        self.last_rate_stats: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------ API
    def place(
        self,
        app: Application,
        cluster: ClusterState,
        profile: Optional[NetworkProfile] = None,
    ) -> Placement:
        if profile is None:
            raise PlacementError("the greedy placer needs a network profile")
        self.check_feasible(app, cluster)

        machines = cluster.machine_names()
        for machine in machines:
            if machine not in profile.vms:
                raise PlacementError(
                    f"machine {machine!r} is not covered by the network profile"
                )

        assignments: Dict[str, str] = {}
        free_cpu = {m: cluster.available_cpu(m) for m in machines}
        load = ConnectionLoad()
        use_cache = (
            _default_rate_cache if self.use_rate_cache is None else self.use_rate_cache
        )
        table = (
            EffectiveRateTable(profile, load, model=self.model) if use_cache else None
        )

        def rate_of(src_machine: str, dst_machine: str) -> float:
            if table is not None:
                return table.rate(src_machine, dst_machine)
            return effective_rate(
                profile, src_machine, dst_machine, load, model=self.model
            )

        def record_connection(src_machine: str, dst_machine: str) -> None:
            if table is not None:
                table.record(src_machine, dst_machine)
            else:
                load.add(src_machine, dst_machine)

        def cpu_fits(task_name: str, machine: str, pending_same: float = 0.0) -> bool:
            return app.cpu_demand(task_name) + pending_same <= free_cpu[machine] + _EPS

        def assign(task_name: str, machine: str) -> None:
            assignments[task_name] = machine
            free_cpu[machine] -= app.cpu_demand(task_name)

        # Line 2: walk transfers in descending order of volume.
        for src_task, dst_task, _volume in app.transfers():
            src_placed = assignments.get(src_task)
            dst_placed = assignments.get(dst_task)

            if src_placed is not None and dst_placed is not None:
                # Both endpoints already pinned; just account for the
                # connection so later rate estimates see it.
                record_connection(src_placed, dst_placed)
                continue

            candidates = self._candidate_paths(
                app, src_task, dst_task, src_placed, dst_placed,
                machines, cpu_fits,
            )
            if not candidates:
                raise PlacementError(
                    f"no CPU-feasible machine pair for transfer "
                    f"{src_task!r} -> {dst_task!r} of application {app.name!r}"
                )

            best = self._pick_best(candidates, rate_of)
            src_machine, dst_machine = best
            if src_placed is None:
                assign(src_task, src_machine)
            if dst_placed is None and dst_task not in assignments:
                assign(dst_task, dst_machine)
            record_connection(src_machine, dst_machine)

        # Tasks with no transfers at all: spread over the freest machines.
        for task in app.task_names:
            if task in assignments:
                continue
            feasible = [m for m in machines if cpu_fits(task, m)]
            if not feasible:
                raise PlacementError(
                    f"no machine has CPU for task {task!r} of application {app.name!r}"
                )
            choice = max(feasible, key=lambda m: (free_cpu[m], m))
            assign(task, choice)

        self.last_rate_stats = (
            {"hits": table.hits, "misses": table.misses} if table is not None else None
        )
        placement = Placement(app_name=app.name, assignments=assignments)
        validate_placement(placement, app, cluster)
        return placement

    # ------------------------------------------------------------ internals
    def _candidate_paths(
        self,
        app: Application,
        src_task: str,
        dst_task: str,
        src_placed: Optional[str],
        dst_placed: Optional[str],
        machines: List[str],
        cpu_fits,
    ) -> List[Tuple[str, str]]:
        """Lines 3-11: enumerate CPU-feasible candidate machine pairs."""
        candidates: List[Tuple[str, str]] = []
        if src_placed is not None:
            # Source pinned: paths k -> N for all machines N (line 4); only
            # the unplaced destination task consumes CPU, whether or not it
            # colocates with the source.
            for dst_machine in machines:
                if cpu_fits(dst_task, dst_machine):
                    candidates.append((src_placed, dst_machine))
        elif dst_placed is not None:
            # Destination pinned: paths M -> l for all machines M (line 6).
            for src_machine in machines:
                if cpu_fits(src_task, src_machine):
                    candidates.append((src_machine, dst_placed))
        else:
            # Neither pinned: all machine pairs, including same-machine
            # placements (lines 7-8).  Colocation must fit *both* tasks'
            # CPU demand on the one machine.
            for src_machine in machines:
                for dst_machine in machines:
                    if src_machine == dst_machine:
                        both_fit = cpu_fits(
                            src_task, src_machine,
                            pending_same=app.cpu_demand(dst_task),
                        )
                        if both_fit:
                            candidates.append((src_machine, dst_machine))
                    elif cpu_fits(src_task, src_machine) and cpu_fits(dst_task, dst_machine):
                        candidates.append((src_machine, dst_machine))
        return candidates

    def _pick_best(
        self,
        candidates: List[Tuple[str, str]],
        rate_of,
    ) -> Tuple[str, str]:
        """Lines 12-14: choose the candidate path with the highest rate."""
        def sort_key(pair: Tuple[str, str]):
            src, dst = pair
            rate = rate_of(src, dst)
            colocated = 1 if (self.prefer_colocation and src == dst) else 0
            # Highest rate first, then colocation, then deterministic names.
            return (-rate, -colocated, src, dst)

        return min(candidates, key=sort_key)
