"""Baseline placement algorithms (paper §6).

The evaluation compares Choreo to three network-oblivious schemes:

* **Random** — tasks go to random CPU-feasible VMs (the baseline for
  comparison);
* **Round-robin** — tasks go to the next machine in the list with enough
  free CPU, similar to a load balancer minimising per-VM CPU;
* **Minimum Machines** — tasks are packed onto as few VMs as possible
  (first-fit), the cheapest option for a cost-conscious tenant.

All of them satisfy CPU constraints but ignore the network profile.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.network_profile import NetworkProfile
from repro.core.placement.base import ClusterState, Placement, Placer, validate_placement
from repro.errors import PlacementError
from repro.workloads.application import Application

_EPS = 1e-9


def _ordered_tasks(app: Application) -> List[str]:
    """Tasks in declaration order (the order a tenant would submit them)."""
    return list(app.task_names)


class RandomPlacer(Placer):
    """Assign every task to a uniformly random CPU-feasible machine."""

    name = "random"

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    def place(
        self,
        app: Application,
        cluster: ClusterState,
        profile: Optional[NetworkProfile] = None,
    ) -> Placement:
        self.check_feasible(app, cluster)
        free = {m: cluster.available_cpu(m) for m in cluster.machine_names()}
        assignments: Dict[str, str] = {}
        for task in _ordered_tasks(app):
            demand = app.cpu_demand(task)
            feasible = [m for m, cpu in free.items() if demand <= cpu + _EPS]
            if not feasible:
                raise PlacementError(
                    f"random placement ran out of CPU for task {task!r} "
                    f"of application {app.name!r}"
                )
            choice = str(self._rng.choice(sorted(feasible)))
            assignments[task] = choice
            free[choice] -= demand
        placement = Placement(app_name=app.name, assignments=assignments)
        validate_placement(placement, app, cluster)
        return placement


class RoundRobinPlacer(Placer):
    """Assign tasks to machines in round-robin order, skipping full machines."""

    name = "round-robin"

    def place(
        self,
        app: Application,
        cluster: ClusterState,
        profile: Optional[NetworkProfile] = None,
    ) -> Placement:
        self.check_feasible(app, cluster)
        machines = cluster.machine_names()
        free = {m: cluster.available_cpu(m) for m in machines}
        assignments: Dict[str, str] = {}
        cursor = 0
        for task in _ordered_tasks(app):
            demand = app.cpu_demand(task)
            placed = False
            for offset in range(len(machines)):
                machine = machines[(cursor + offset) % len(machines)]
                if demand <= free[machine] + _EPS:
                    assignments[task] = machine
                    free[machine] -= demand
                    cursor = (cursor + offset + 1) % len(machines)
                    placed = True
                    break
            if not placed:
                raise PlacementError(
                    f"round-robin placement ran out of CPU for task {task!r} "
                    f"of application {app.name!r}"
                )
        placement = Placement(app_name=app.name, assignments=assignments)
        validate_placement(placement, app, cluster)
        return placement


class MinimumMachinesPlacer(Placer):
    """Pack tasks onto as few machines as possible (first-fit)."""

    name = "min-machines"

    def place(
        self,
        app: Application,
        cluster: ClusterState,
        profile: Optional[NetworkProfile] = None,
    ) -> Placement:
        self.check_feasible(app, cluster)
        machines = cluster.machine_names()
        free = {m: cluster.available_cpu(m) for m in machines}
        opened: List[str] = []
        assignments: Dict[str, str] = {}
        for task in _ordered_tasks(app):
            demand = app.cpu_demand(task)
            target: Optional[str] = None
            # Prefer a machine that is already in use (to minimise count).
            for machine in opened:
                if demand <= free[machine] + _EPS:
                    target = machine
                    break
            if target is None:
                for machine in machines:
                    if machine not in opened and demand <= free[machine] + _EPS:
                        target = machine
                        opened.append(machine)
                        break
            if target is None:
                raise PlacementError(
                    f"minimum-machines placement ran out of CPU for task {task!r} "
                    f"of application {app.name!r}"
                )
            assignments[task] = target
            free[target] -= demand
        placement = Placement(app_name=app.name, assignments=assignments)
        validate_placement(placement, app, cluster)
        return placement
