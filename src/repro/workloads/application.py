"""Tasks, traffic matrices, and applications (paper §2.1).

Choreo models an application as a set of *tasks* plus a traffic matrix whose
entry ``(i, j)`` is the number of bytes task ``i`` sends to task ``j`` over
the application's lifetime.  The matrix records bytes rather than rates
because bytes are independent of cross traffic (§2.1).  Tasks also carry a
CPU demand (the evaluation models 0.5–4 cores per task on 4-core machines).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError


@dataclass(frozen=True)
class Task:
    """One schedulable unit of an application.

    Attributes:
        name: identifier, unique within its application.
        cpu_cores: CPU demand in cores (the paper uses 0.5–4).
    """

    name: str
    cpu_cores: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("task name must be non-empty")
        if self.cpu_cores <= 0:
            raise WorkloadError(f"task {self.name!r}: cpu_cores must be positive")


class TrafficMatrix:
    """Sparse task-to-task byte counts.

    The matrix is directional: ``matrix[i, j]`` is the number of bytes task
    ``i`` sends to task ``j``.  Entries are accumulated, so profiling code
    can simply :meth:`add` every observed flow record.
    """

    def __init__(self, entries: Optional[Mapping[Tuple[str, str], float]] = None):
        self._entries: Dict[Tuple[str, str], float] = {}
        if entries:
            for (src, dst), value in entries.items():
                self.add(src, dst, value)

    # ------------------------------------------------------------- mutation
    def add(self, src: str, dst: str, num_bytes: float) -> None:
        """Accumulate ``num_bytes`` from ``src`` to ``dst``.

        Self-transfers and non-positive volumes are ignored (they carry no
        placement information).
        """
        if num_bytes < 0:
            raise WorkloadError("traffic matrix entries must be >= 0")
        if src == dst or num_bytes == 0:
            return
        key = (src, dst)
        self._entries[key] = self._entries.get(key, 0.0) + float(num_bytes)

    def merge(self, other: "TrafficMatrix") -> None:
        """Accumulate every entry of ``other`` into this matrix."""
        for (src, dst), value in other.items():
            self.add(src, dst, value)

    def scaled(self, factor: float) -> "TrafficMatrix":
        """A new matrix with every entry multiplied by ``factor``."""
        if factor < 0:
            raise WorkloadError("scale factor must be >= 0")
        return TrafficMatrix(
            {pair: value * factor for pair, value in self._entries.items()}
        )

    # ------------------------------------------------------------ inspection
    def get(self, src: str, dst: str) -> float:
        """Bytes sent from ``src`` to ``dst`` (0 when never observed)."""
        return self._entries.get((src, dst), 0.0)

    def items(self) -> List[Tuple[Tuple[str, str], float]]:
        """All ``((src, dst), bytes)`` entries, in insertion order."""
        return list(self._entries.items())

    def pairs_by_volume(self) -> List[Tuple[str, str, float]]:
        """Transfers as ``(src, dst, bytes)``, largest first (Algorithm 1, line 1)."""
        return sorted(
            ((src, dst, value) for (src, dst), value in self._entries.items()),
            key=lambda item: (-item[2], item[0], item[1]),
        )

    def tasks(self) -> List[str]:
        """Every task name that sends or receives data, sorted."""
        names = set()
        for src, dst in self._entries:
            names.add(src)
            names.add(dst)
        return sorted(names)

    @property
    def total_bytes(self) -> float:
        """Sum of all entries."""
        return sum(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TrafficMatrix):
            return NotImplemented
        return self._entries == other._entries

    def __repr__(self) -> str:
        return f"TrafficMatrix({len(self._entries)} entries, {self.total_bytes:.0f} bytes)"

    # ----------------------------------------------------------- conversion
    def to_array(self, task_order: Sequence[str]) -> np.ndarray:
        """Dense matrix with rows/columns ordered by ``task_order``."""
        index = {name: i for i, name in enumerate(task_order)}
        matrix = np.zeros((len(task_order), len(task_order)))
        for (src, dst), value in self._entries.items():
            if src not in index or dst not in index:
                raise WorkloadError(
                    f"traffic matrix references task not in task_order: {src!r}/{dst!r}"
                )
            matrix[index[src], index[dst]] = value
        return matrix

    @classmethod
    def from_array(
        cls, matrix: np.ndarray, task_order: Sequence[str]
    ) -> "TrafficMatrix":
        """Build a sparse matrix from a dense array and a task ordering."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.shape != (len(task_order), len(task_order)):
            raise WorkloadError("array shape does not match task_order length")
        result = cls()
        for i, src in enumerate(task_order):
            for j, dst in enumerate(task_order):
                if i != j and matrix[i, j] > 0:
                    result.add(src, dst, float(matrix[i, j]))
        return result


@dataclass
class Application:
    """A named set of tasks plus their traffic matrix.

    Attributes:
        name: application identifier.
        tasks: the application's tasks; names must be unique.
        traffic: task-to-task byte counts; every referenced task must exist.
        start_time: observed (or scheduled) start time in seconds, used when
            placing sequences of applications (§6.3).
    """

    name: str
    tasks: List[Task]
    traffic: TrafficMatrix = field(default_factory=TrafficMatrix)
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("application name must be non-empty")
        if not self.tasks:
            raise WorkloadError(f"application {self.name!r} has no tasks")
        names = [task.name for task in self.tasks]
        if len(set(names)) != len(names):
            raise WorkloadError(f"application {self.name!r} has duplicate task names")
        known = set(names)
        for src, dst in (pair for pair, _ in self.traffic.items()):
            if src not in known or dst not in known:
                raise WorkloadError(
                    f"application {self.name!r}: traffic references unknown task "
                    f"{src!r} or {dst!r}"
                )
        if self.start_time < 0:
            raise WorkloadError("start_time must be >= 0")

    # ------------------------------------------------------------ inspection
    @property
    def task_names(self) -> List[str]:
        """Task names in declaration order."""
        return [task.name for task in self.tasks]

    def task(self, name: str) -> Task:
        """Look up a task by name."""
        for task in self.tasks:
            if task.name == name:
                return task
        raise WorkloadError(f"application {self.name!r} has no task {name!r}")

    def cpu_demand(self, task_name: str) -> float:
        """CPU demand (cores) of one task."""
        return self.task(task_name).cpu_cores

    @property
    def total_cpu(self) -> float:
        """Total CPU demand of the application in cores."""
        return sum(task.cpu_cores for task in self.tasks)

    @property
    def total_bytes(self) -> float:
        """Total bytes the application transfers between tasks."""
        return self.traffic.total_bytes

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    def transfers(self) -> List[Tuple[str, str, float]]:
        """Transfers sorted by descending volume (Algorithm 1 input)."""
        return self.traffic.pairs_by_volume()

    def renamed(self, prefix: str) -> "Application":
        """A copy with every task name prefixed (used when combining apps)."""
        mapping = {task.name: f"{prefix}{task.name}" for task in self.tasks}
        new_tasks = [Task(mapping[t.name], t.cpu_cores) for t in self.tasks]
        new_traffic = TrafficMatrix(
            {(mapping[s], mapping[d]): v for (s, d), v in self.traffic.items()}
        )
        return Application(
            name=self.name,
            tasks=new_tasks,
            traffic=new_traffic,
            start_time=self.start_time,
        )


def combine_applications(
    applications: Sequence[Application], name: str = "combined"
) -> Application:
    """Merge applications into one, "in the obvious way" (§6.2).

    Task names are prefixed with their application's name so that identically
    named tasks from different applications stay distinct.  The combined
    start time is the earliest of the inputs.
    """
    if not applications:
        raise WorkloadError("cannot combine an empty list of applications")
    tasks: List[Task] = []
    traffic = TrafficMatrix()
    for app in applications:
        renamed = app.renamed(prefix=f"{app.name}/")
        tasks.extend(renamed.tasks)
        traffic.merge(renamed.traffic)
    return Application(
        name=name,
        tasks=tasks,
        traffic=traffic,
        start_time=min(app.start_time for app in applications),
    )
