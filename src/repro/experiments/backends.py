"""Pluggable execution backends for experiment sweeps.

The runner used to hard-code its execution strategy (run inline, or fan out
over a ``ProcessPoolExecutor``).  This module turns that strategy into a
seam: an :class:`ExecutionBackend` maps :class:`~repro.experiments.trials.WorkItem`
batches to :class:`~repro.experiments.results.TrialRecord` lists, and
backends are registered by name so configs, the CLI, and result files can
address them as data.

Four backends ship in-tree:

* ``inline`` — run every trial in the current process (deterministic
  debugging default);
* ``process`` — fan out over a ``ProcessPoolExecutor`` (the strategy
  formerly hard-coded in the runner);
* ``subprocess-pool`` — split the batch into chunks and spawn one fresh
  ``python -m repro.experiments.backends`` worker process per chunk,
  exchanging JSON files.  Nothing in the protocol assumes a shared
  interpreter (or even a shared machine): the worker reads named work items
  and writes plain-JSON records;
* ``remote`` — lease chunks to long-running HTTP workers
  (:mod:`repro.experiments.worker`), potentially on other machines, all
  populating one shared :class:`~repro.experiments.cache.ResultStore`.

The subprocess pool and the remote fabric are the backends whose workers
can *die* (crash, OOM-kill, network partition), so they carry the fault
tolerance: workers stream records as JSON Lines — one line per completed
trial, flushed — and the parent salvages whatever a dead or hung worker
managed to finish, then retries only the missing trials in a fresh wave.
Hung subprocess workers are detected with a per-chunk timeout and killed;
hung remote workers miss their lease's heartbeat deadline and lose the
lease.  Because every trial is a deterministic function of its work item,
a record salvaged from a crashed worker is bit-identical to one from a
healthy worker, and a sweep that loses workers mid-flight still produces
the exact result a clean run would.

Every backend must return records in the order of its input items, and a
backend given the same items must produce the same records (modulo host
wall-clock timings) — the equivalence tests hold all of them to that.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import random
import subprocess
import sys
import tempfile
import threading
import time
from concurrent import futures
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro import obs
from repro.errors import ExperimentError
from repro.experiments.results import TrialRecord
from repro.experiments.trials import WorkItem, execute_work_item

logger = logging.getLogger("repro.experiments.fabric")

#: Fabric counters (``obs.metrics.snapshot()`` under ``repro.fabric.*``).
#: They accumulate across every ``map_trials`` call in the process, while
#: :attr:`RemoteBackend.last_fabric_stats` keeps the per-sweep view.
_FABRIC_LEASES = obs.Counter("repro.fabric.leases")
_FABRIC_SALVAGED = obs.Counter("repro.fabric.salvaged_records")
_FABRIC_RETRY_WAVES = obs.Counter("repro.fabric.retry_waves")
_FABRIC_RETRIED = obs.Counter("repro.fabric.retried_trials")
_FABRIC_DUPLICATES = obs.Counter("repro.fabric.duplicates_discarded")
_FABRIC_STRAGGLERS = obs.Counter("repro.fabric.stragglers_redispatched")
_FABRIC_DEAD = obs.Counter("repro.fabric.workers_presumed_dead")
_FABRIC_HUNG = obs.Counter("repro.fabric.leases_hung")
_FABRIC_IDLE = obs.Gauge("repro.fabric.max_worker_idle_fraction")

#: Wire-format schema the subprocess worker speaks.  v2 replaced the single
#: output JSON document with JSON Lines (header, then one record per line,
#: flushed as produced) so a killed worker leaves a salvageable prefix.
WORKER_SCHEMA = "repro.experiments/worker/v2"

DEFAULT_BACKEND = "inline"

#: Default number of retry waves the subprocess pool runs for trials whose
#: worker died, beyond the initial wave.
DEFAULT_MAX_RETRIES = 2

#: Environment variables of the worker chaos hook (test-only): when both
#: are set, workers that win the marker-file race in
#: ``REPRO_WORKER_CHAOS_DIR`` misbehave per ``REPRO_WORKER_CHAOS_MODE``
#: (``crash``: exit hard after the first record; ``hang``: sleep forever
#: after the first record; ``slow``: drag every subsequent trial by
#: :data:`CHAOS_SLOW_S`).  The mode may be a comma-separated list — e.g.
#: ``crash,hang`` arms one worker per mode, in order — and each mode fires
#: exactly once per chaos dir, so chaos tests are deterministic in *what*
#: is lost even though process scheduling is not.
CHAOS_DIR_ENV = "REPRO_WORKER_CHAOS_DIR"
CHAOS_MODE_ENV = "REPRO_WORKER_CHAOS_MODE"

#: Exit status of a chaos-crashed worker (distinct from argparse's 2).
CHAOS_EXIT_STATUS = 17

#: Per-trial drag of a chaos-slowed worker (straggler injection).
CHAOS_SLOW_S = 0.4

_CHAOS_MODES = ("crash", "hang", "slow")


@runtime_checkable
class ExecutionBackend(Protocol):
    """Executes picklable work items; how and where is the backend's business."""

    name: str

    def submit(self, item: WorkItem) -> TrialRecord:
        """Run a single work item."""
        ...

    def map_trials(self, items: Sequence[WorkItem]) -> List[TrialRecord]:
        """Run a batch; the result order matches the input order."""
        ...


@dataclass(frozen=True)
class BackendSpec:
    """A registered execution backend: metadata plus a factory.

    The factory takes the worker-count hint (``None`` = size to the batch,
    capped at the CPU count) and a backend-specific options mapping, and
    returns a ready :class:`ExecutionBackend`.  Backends without options
    must reject a non-empty mapping so typos fail loudly.
    """

    name: str
    description: str
    factory: Callable[[Optional[int], Mapping[str, object]], ExecutionBackend]


_BACKENDS: Dict[str, BackendSpec] = {}


def register_backend(spec: BackendSpec) -> BackendSpec:
    """Register a backend spec; duplicate names raise :class:`ExperimentError`."""
    if spec.name in _BACKENDS:
        raise ExperimentError(f"backend {spec.name!r} is already registered")
    _BACKENDS[spec.name] = spec
    return spec


def get_backend(name: str) -> BackendSpec:
    """Look up a backend spec by name."""
    try:
        return _BACKENDS[name]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown backend {name!r}; registered: {backend_names()}"
        ) from exc


def backend_names() -> List[str]:
    """All registered backend names, sorted."""
    return sorted(_BACKENDS)


def create_backend(
    name: str,
    workers: Optional[int] = None,
    options: Optional[Mapping[str, object]] = None,
) -> ExecutionBackend:
    """Instantiate a registered backend with a worker hint and options."""
    return get_backend(name).factory(workers, dict(options or {}))


def _reject_options(name: str, options: Mapping[str, object]) -> None:
    if options:
        raise ExperimentError(
            f"backend {name!r} accepts no options; got {sorted(options)}"
        )


def _resolve_workers(workers: Optional[int], n_items: int) -> int:
    if workers is not None:
        return max(1, workers)
    return max(1, min(n_items, os.cpu_count() or 1))


# ---------------------------------------------------------------------------
# inline
# ---------------------------------------------------------------------------
class InlineBackend:
    """Run every trial in the current process, one after another."""

    name = "inline"

    def submit(self, item: WorkItem) -> TrialRecord:
        return execute_work_item(item)

    def map_trials(self, items: Sequence[WorkItem]) -> List[TrialRecord]:
        return [execute_work_item(item) for item in items]


# ---------------------------------------------------------------------------
# process
# ---------------------------------------------------------------------------
class ProcessPoolBackend:
    """Fan trials out over a ``concurrent.futures.ProcessPoolExecutor``."""

    name = "process"

    def __init__(self, workers: Optional[int] = None):
        self.workers = workers

    def submit(self, item: WorkItem) -> TrialRecord:
        return self.map_trials([item])[0]

    def map_trials(self, items: Sequence[WorkItem]) -> List[TrialRecord]:
        if not items:
            return []
        workers = _resolve_workers(self.workers, len(items))
        if workers == 1:
            return InlineBackend().map_trials(items)
        records: List[Optional[TrialRecord]] = [None] * len(items)
        with futures.ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {
                pool.submit(execute_work_item, item): index
                for index, item in enumerate(items)
            }
            for future in futures.as_completed(pending):
                records[pending[future]] = future.result()
        return records  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# subprocess-pool
# ---------------------------------------------------------------------------
def _worker_env() -> Dict[str, str]:
    """Child env with the parent's ``repro`` package importable.

    Test runs import ``repro`` from a source checkout via ``sys.path`` (not
    the environment), so the parent's import location is prepended to the
    child's ``PYTHONPATH`` explicitly.
    """
    import repro

    package_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing else package_root + os.pathsep + existing
    )
    return env


def _split_chunks(items: Sequence, n_chunks: int) -> List[List[int]]:
    """Round-robin item indices into ``n_chunks`` non-empty chunks."""
    chunks: List[List[int]] = [[] for _ in range(min(n_chunks, len(items)))]
    for index in range(len(items)):
        chunks[index % len(chunks)].append(index)
    return chunks


def _salvage_records(out_path: Path) -> Dict[int, TrialRecord]:
    """Recover completed records from a worker's (possibly partial) output.

    The worker writes JSON Lines — a schema header, then one
    ``{"index": local_index, "record": {...}}`` line per completed trial,
    flushed immediately — so a worker killed mid-chunk leaves a valid
    prefix.  A truncated or garbled tail line (the worker died mid-write)
    is skipped, as is the whole file when the header is missing or from a
    different schema version.
    """
    try:
        lines = out_path.read_text().splitlines()
    except OSError:
        return {}
    if not lines:
        return {}
    try:
        header = json.loads(lines[0])
    except ValueError:
        return {}
    if not isinstance(header, dict) or header.get("schema") != WORKER_SCHEMA:
        return {}
    salvaged: Dict[int, TrialRecord] = {}
    for line in lines[1:]:
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
            record = TrialRecord(**data["record"])
            index = int(data["index"])
        except (ValueError, KeyError, TypeError):
            continue  # truncated/garbled tail: everything before it stands
        salvaged[index] = record
    return salvaged


class SubprocessPoolBackend:
    """Spawn one fresh worker process per chunk of the batch.

    Unlike ``process``, workers share nothing with the parent but a JSON
    file pair, so the same protocol can dispatch chunks to remote machines.
    The price is a cold interpreter start per chunk, which amortises over
    chunk size — exactly the trade a multi-machine pool makes.

    Worker loss is tolerated, not fatal: each worker streams completed
    records (JSON Lines, flushed per trial), so when one crashes or hangs
    the parent salvages its finished prefix, kills it if needed, and
    re-runs only the missing trials in up to ``max_retries`` further waves.
    Because trials are deterministic in their work items, the assembled
    result is bit-identical to a run without failures.

    Args:
        workers: worker-count hint (``None`` sizes to the batch, capped at
            the CPU count).
        max_retries: retry waves for missing trials after the initial wave;
            only when a wave ends with trials still missing *and* the
            budget is spent does the sweep fail.
        chunk_timeout_s: wall-clock budget per worker process; a worker
            still running after it is presumed hung and killed (its
            completed prefix is salvaged).  ``None`` waits forever.
    """

    name = "subprocess-pool"

    def __init__(
        self,
        workers: Optional[int] = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        chunk_timeout_s: Optional[float] = None,
    ):
        if max_retries < 0:
            raise ExperimentError("max_retries must be >= 0")
        if chunk_timeout_s is not None and chunk_timeout_s <= 0:
            raise ExperimentError("chunk_timeout_s must be positive (or None)")
        self.workers = workers
        self.max_retries = max_retries
        self.chunk_timeout_s = chunk_timeout_s

    def submit(self, item: WorkItem) -> TrialRecord:
        return self.map_trials([item])[0]

    def map_trials(self, items: Sequence[WorkItem]) -> List[TrialRecord]:
        if not items:
            return []
        records: Dict[int, TrialRecord] = {}
        missing = list(range(len(items)))
        failures: List[str] = []
        for wave in range(self.max_retries + 1):
            failures = self._run_wave(items, missing, records, wave)
            for failure in failures:
                logger.info("subprocess-pool: %s", failure)
            missing = [i for i in range(len(items)) if i not in records]
            if not missing:
                break
        if missing:
            detail = "; ".join(failures[:4]) if failures else "no worker output"
            raise ExperimentError(
                f"subprocess-pool gave up on {len(missing)} trial(s) after "
                f"{self.max_retries + 1} wave(s): {detail}"
            )
        return [records[i] for i in range(len(items))]

    def _run_wave(
        self,
        items: Sequence[WorkItem],
        missing: Sequence[int],
        records: Dict[int, TrialRecord],
        wave: int,
    ) -> List[str]:
        """Run one wave of workers over the missing items.

        Salvages whatever each worker completed into ``records`` and
        returns the failure descriptions of workers that died, hung, or
        returned short — the caller decides whether another wave runs.
        """
        chunks = _split_chunks(missing, _resolve_workers(self.workers, len(missing)))
        failures: List[str] = []
        with tempfile.TemporaryDirectory(prefix="repro-subproc-") as tmp:
            env = _worker_env()
            procs: List[subprocess.Popen] = []
            out_paths: List[Path] = []
            for chunk_no, local_indices in enumerate(chunks):
                in_path = Path(tmp) / f"wave{wave}.chunk{chunk_no}.in.json"
                out_path = Path(tmp) / f"wave{wave}.chunk{chunk_no}.out.jsonl"
                in_path.write_text(
                    json.dumps(
                        {
                            "schema": WORKER_SCHEMA,
                            "items": [
                                items[missing[i]].to_json_dict()
                                for i in local_indices
                            ],
                        }
                    )
                )
                procs.append(
                    subprocess.Popen(
                        [
                            sys.executable, "-m", "repro.experiments.backends",
                            str(in_path), str(out_path),
                        ],
                        env=env,
                        stdout=subprocess.PIPE,
                        stderr=subprocess.PIPE,
                        text=True,
                    )
                )
                out_paths.append(out_path)
            # Reap every worker before judging any of them: raising early
            # would orphan still-running siblings and delete the tempdir
            # from under them.  A worker that outlives its chunk budget is
            # presumed hung: kill it and salvage what it finished.
            outcomes: List[str] = []
            for proc in procs:
                try:
                    _, stderr = proc.communicate(timeout=self.chunk_timeout_s)
                    outcomes.append(
                        "ok" if proc.returncode == 0
                        else f"exited with status {proc.returncode}: "
                             f"{(stderr or '').strip()[-500:]}"
                    )
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.communicate()
                    outcomes.append(
                        f"hung past the {self.chunk_timeout_s:.0f}s chunk "
                        "timeout and was killed"
                    )
            for chunk_no, local_indices in enumerate(chunks):
                salvaged = _salvage_records(out_paths[chunk_no])
                for local, record in salvaged.items():
                    if 0 <= local < len(local_indices):
                        records[missing[local_indices[local]]] = record
                short = len(salvaged) < len(local_indices)
                if outcomes[chunk_no] != "ok" or short:
                    failures.append(
                        f"wave {wave} worker {chunk_no} "
                        f"({len(salvaged)}/{len(local_indices)} trial(s) "
                        f"salvaged): {outcomes[chunk_no]}"
                    )
        return failures


# ---------------------------------------------------------------------------
# remote: cost-aware chunking
# ---------------------------------------------------------------------------
#: Static per-cell cost priors (relative wall clock) used before the shared
#: store has observed anything: an ilp cell costs roughly two orders of
#: magnitude more than a random-placer cell on the same scenario (§6
#: grids), so uniform chunking strands whole workers behind one ilp-heavy
#: chunk while the rest sit idle.
COST_PRIORS: Dict[str, float] = {
    "ilp": 100.0,
    "greedy": 3.0,
    "random": 1.0,
    "round-robin": 1.0,
}

#: Prior for placers the table does not name (between random and greedy).
_DEFAULT_COST_PRIOR = 2.0


def item_weight(
    item: WorkItem,
    cost_table: Optional[Mapping[tuple, float]] = None,
) -> float:
    """Expected cost of one work item, in whatever unit is available.

    Observed mean wall seconds for the item's ``(scenario, placer)`` cell
    when the shared store has seen that cell
    (:meth:`~repro.experiments.cache.ResultStore.cost_table`), the placer's
    static prior otherwise — so even the very first mixed-grid run chunks
    non-uniformly.
    """
    if cost_table:
        observed = cost_table.get(item.cost_key)
        if observed:
            return max(float(observed), 1e-6)
    return COST_PRIORS.get(item.placer, _DEFAULT_COST_PRIOR)


def _weighted_chunks(
    weights: Sequence[float], n_chunks: int
) -> List[List[int]]:
    """Split positions into ``n_chunks`` chunks balanced by weight (LPT).

    Longest-processing-time-first: heaviest positions are placed first,
    each onto the currently lightest chunk, so the grid's cheap tail never
    queues behind its one expensive cell.  Deterministic (ties break by
    position), every returned chunk is non-empty, and positions inside a
    chunk keep their input order.
    """
    n_chunks = max(1, min(n_chunks, len(weights)))
    loads = [0.0] * n_chunks
    chunks: List[List[int]] = [[] for _ in range(n_chunks)]
    order = sorted(range(len(weights)), key=lambda pos: (-weights[pos], pos))
    for pos in order:
        target = min(
            range(n_chunks), key=lambda c: (loads[c], len(chunks[c]), c)
        )
        chunks[target].append(pos)
        loads[target] += weights[pos]
    for chunk in chunks:
        chunk.sort()
    return [chunk for chunk in chunks if chunk]


# ---------------------------------------------------------------------------
# remote: lease-based scheduler
# ---------------------------------------------------------------------------
DEFAULT_HEARTBEAT_TIMEOUT_S = 30.0
DEFAULT_BACKOFF_BASE_S = 0.25
DEFAULT_STRAGGLER_FACTOR = 4.0

#: A lease younger than this is never judged a straggler, whatever its
#: siblings did: millisecond chunks would otherwise duplicate constantly.
MIN_STRAGGLER_S = 1.0


class _Lease:
    """One chunk leased to one worker, with its receive-side state.

    ``records`` maps *global* item indices to records as they stream in;
    the reader thread is the only writer, the monitor only reads (both
    under the GIL), so no lock is needed.
    """

    def __init__(self, lease_id: str, worker: int, indices: List[int]):
        self.lease_id = lease_id
        self.worker = worker  # index into the scheduler's client list
        self.indices = indices  # global item indices, input order
        self.records: Dict[int, TrialRecord] = {}
        self.started = time.monotonic()
        self.last_progress = self.started
        self.finished_at: Optional[float] = None
        self.completed = False  # worker sent its done trailer
        self.failure: Optional[str] = None
        self.cancel = threading.Event()
        self.thread: Optional[threading.Thread] = None
        self.redispatched = False
        self.duplicate_of: Optional[str] = None

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    @property
    def missing(self) -> List[int]:
        return [i for i in self.indices if i not in self.records]


class RemoteBackend:
    """Lease chunks to long-running HTTP workers — the multi-machine fabric.

    Endpoints given, the backend talks to those workers
    (``http://host:port`` running already, ``ssh://[user@]host:port``
    launched first); none given, it spawns a localhost pool of ``workers``
    processes, so ``--backend remote`` works out of the box and tests need
    no ssh.

    Fault model (the subprocess pool's semantics carried across machine
    boundaries):

    * each chunk is a *lease* with a heartbeat deadline: a worker that
      streams no record for ``heartbeat_timeout_s`` is probed via
      ``/health`` — unreachable means the machine died, reachable-but-
      stalled means the lease hung; either way the lease is revoked and
      its streamed prefix salvaged (garbled tails skipped);
    * only missing trials are re-enqueued, in at most ``max_retries``
      further waves, separated by seeded exponential backoff — seeded, so
      a kill-then-salvage-then-retry sweep is reproducible run to run;
    * a persistent straggler (running ``straggler_factor`` times longer
      than the slowest finished lease while a worker sits idle) gets its
      remaining trials re-dispatched to the idle worker; first finisher
      wins and duplicate records are discarded by trial key (benign:
      trials are deterministic, duplicates are identical);
    * chunks are weighed by observed per-cell cost from the shared
      store's cost table (placer priors before any observation), so
      heterogeneous grids saturate all workers instead of stranding them
      behind one ilp-heavy chunk.

    ``store_root`` (the runner passes its ``cache_dir``) is both the cost
    table's source and the ``--cache-dir`` handed to self-spawned workers,
    so every worker writes the one shared store.

    ``last_fabric_stats`` exposes lease/salvage/retry/duplicate counters
    and per-worker idle fractions after each :meth:`map_trials` — the
    bench reports them.
    """

    name = "remote"

    def __init__(
        self,
        workers: Optional[int] = None,
        endpoints: Sequence[str] = (),
        max_retries: int = DEFAULT_MAX_RETRIES,
        heartbeat_timeout_s: float = DEFAULT_HEARTBEAT_TIMEOUT_S,
        backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
        backoff_seed: int = 0,
        straggler_factor: float = DEFAULT_STRAGGLER_FACTOR,
        store_root: Optional[str] = None,
    ):
        if max_retries < 0:
            raise ExperimentError("max_retries must be >= 0")
        if heartbeat_timeout_s <= 0:
            raise ExperimentError("heartbeat_timeout_s must be positive")
        if backoff_base_s < 0:
            raise ExperimentError("backoff_base_s must be >= 0")
        if straggler_factor <= 1.0:
            raise ExperimentError("straggler_factor must be > 1")
        self.workers = workers
        self.endpoints = tuple(endpoints)
        self.max_retries = max_retries
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.backoff_base_s = backoff_base_s
        self.backoff_seed = backoff_seed
        self.straggler_factor = straggler_factor
        self.store_root = store_root
        self.last_fabric_stats: Dict[str, object] = {}

    def submit(self, item: WorkItem) -> TrialRecord:
        return self.map_trials([item])[0]

    def map_trials(self, items: Sequence[WorkItem]) -> List[TrialRecord]:
        if not items:
            return []
        # Imported here, not at module level: worker.py imports this module
        # for the shared wire schema and chaos hook.
        from repro.experiments import worker as worker_mod

        pool: Optional[worker_mod.LocalWorkerPool] = None
        launched: List[subprocess.Popen] = []
        try:
            clients: List[worker_mod.WorkerClient] = []
            if self.endpoints:
                for spec in self.endpoints:
                    endpoint = worker_mod.parse_endpoint(spec)
                    if endpoint.scheme == "ssh":
                        launched.append(
                            worker_mod.launch_ssh_worker(
                                endpoint, cache_dir=self.store_root
                            )
                        )
                    clients.append(
                        worker_mod.WorkerClient(endpoint.host, endpoint.port)
                    )
            else:
                pool = worker_mod.spawn_local_workers(
                    _resolve_workers(self.workers, len(items)),
                    cache_dir=self.store_root,
                )
                clients = [
                    worker_mod.WorkerClient(host, port)
                    for host, port in pool.addresses
                ]
            return self._run(items, clients)
        finally:
            if pool is not None:
                pool.close()
            for proc in launched:
                if proc.poll() is None:
                    proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()

    # ------------------------------------------------------------- scheduling
    def _run(self, items: Sequence[WorkItem], clients: List) -> List[TrialRecord]:
        sweep = obs.span(
            "fabric.map_trials", trials=len(items), workers=len(clients)
        )
        with sweep:
            result = self._run_leases(items, clients)
            stats = self.last_fabric_stats
            sweep.set(
                leases=stats.get("leases", 0),
                retry_waves=stats.get("retry_waves", 0),
                salvaged=stats.get("salvaged_records", 0),
            )
        return result

    def _run_leases(
        self, items: Sequence[WorkItem], clients: List
    ) -> List[TrialRecord]:
        cost_table = self._cost_table()
        stats: Dict[str, object] = {
            "workers": len(clients),
            "leases": 0,
            "retry_waves": 0,
            "retried_trials": 0,
            "salvaged_records": 0,
            "duplicates_discarded": 0,
            "stragglers_redispatched": 0,
            "backoff_delays_s": [],
            "cost_source": "observed" if cost_table else "priors",
        }
        self.last_fabric_stats = stats
        # One deterministic jitter stream per sweep: same seed, same missing
        # sets => identical backoff delays, so chaos runs reproduce exactly.
        rng = random.Random(self.backoff_seed)
        state = [
            {"alive": True, "tainted": False, "busy_s": 0.0} for _ in clients
        ]
        lease_seq = itertools.count()
        records: Dict[int, TrialRecord] = {}
        failures: List[str] = []
        started = time.monotonic()
        for wave in range(self.max_retries + 1):
            missing = [i for i in range(len(items)) if i not in records]
            if not missing:
                break
            if wave:
                delay = (
                    self.backoff_base_s * (2 ** (wave - 1))
                    * (0.5 + rng.random())
                )
                stats["backoff_delays_s"].append(round(delay, 6))
                logger.info(
                    "fabric: retry wave %d for %d missing trial(s) after "
                    "%.3fs backoff", wave, len(missing), delay,
                )
                time.sleep(delay)
                stats["retry_waves"] += 1
                stats["retried_trials"] += len(missing)
                _FABRIC_RETRY_WAVES.inc()
                _FABRIC_RETRIED.inc(len(missing))
            failures.extend(
                self._run_wave(
                    items, missing, records, wave, clients, state, stats,
                    cost_table, lease_seq,
                )
            )
        missing = [i for i in range(len(items)) if i not in records]
        if missing:
            detail = "; ".join(failures[-4:]) if failures else "no worker output"
            raise ExperimentError(
                f"remote backend gave up on {len(missing)} trial(s) after "
                f"{self.max_retries + 1} wave(s): {detail}"
            )
        makespan = time.monotonic() - started
        stats["makespan_s"] = round(makespan, 4)
        if makespan > 0:
            idle = [
                max(0.0, 1.0 - st["busy_s"] / makespan) for st in state
            ]
            stats["max_worker_idle_fraction"] = round(max(idle), 4)
            _FABRIC_IDLE.set(stats["max_worker_idle_fraction"])
            # Total worker-busy time over makespan: how many workers the
            # scheduler kept fed *concurrently*.  Unlike wall-clock speedup
            # this measures the fabric, not the host — it stays ~fleet-sized
            # on an oversubscribed single core, and collapses toward 1 when
            # bad chunking strands workers.
            stats["scheduled_parallelism"] = round(
                sum(st["busy_s"] for st in state) / makespan, 3
            )
        stats["failures"] = failures
        logger.info(
            "fabric: %d trial(s) over %d worker(s) in %d lease(s), "
            "%d retry wave(s), %d salvaged, %d duplicate(s) discarded, "
            "makespan %.2fs",
            len(items), len(clients), stats["leases"], stats["retry_waves"],
            stats["salvaged_records"], stats["duplicates_discarded"],
            stats["makespan_s"],
        )
        return [records[i] for i in range(len(items))]

    def _run_wave(
        self,
        items: Sequence[WorkItem],
        missing: Sequence[int],
        records: Dict[int, TrialRecord],
        wave: int,
        clients: List,
        state: List[Dict[str, object]],
        stats: Dict[str, object],
        cost_table: Mapping,
        lease_seq,
    ) -> List[str]:
        """Lease the missing items out, monitor, salvage; returns failures."""
        available = self._available_workers(clients, state, probe=wave > 0)
        if not available:
            raise ExperimentError(
                "remote backend has no live workers left to lease to"
            )
        weights = [item_weight(items[i], cost_table) for i in missing]
        chunks = _weighted_chunks(weights, len(available))
        leases: List[_Lease] = []
        for chunk_no, positions in enumerate(chunks):
            leases.append(
                self._dispatch(
                    items, [missing[p] for p in positions],
                    available[chunk_no], clients, stats, lease_seq,
                )
            )
        self._monitor(items, leases, clients, state, stats, lease_seq)
        failures: List[str] = []
        for lease in leases:
            merged = 0
            for index in lease.indices:
                record = lease.records.get(index)
                if record is None:
                    continue
                if index in records:
                    # A straggler's re-dispatched trial finished twice:
                    # first finisher won, this copy is identical (the trial
                    # key determines the record) and is discarded.
                    stats["duplicates_discarded"] += 1
                    _FABRIC_DUPLICATES.inc()
                else:
                    records[index] = record
                    merged += 1
            if lease.failure is None and lease.missing:
                lease.failure = "worker returned short"
            if lease.failure:
                stats["salvaged_records"] += merged
                _FABRIC_SALVAGED.inc(merged)
                failure = (
                    f"wave {wave} {lease.lease_id} on "
                    f"{clients[lease.worker].address} "
                    f"({merged}/{len(lease.indices)} trial(s) salvaged): "
                    f"{lease.failure}"
                )
                logger.info("fabric: %s", failure)
                failures.append(failure)
        return failures

    def _available_workers(
        self, clients: List, state: List[Dict[str, object]], probe: bool
    ) -> List[int]:
        """Workers to lease to, healthy first, tainted-but-alive as fallback.

        Retry waves probe candidates up front so a worker that crashed in
        the previous wave is never leased to again; a *tainted* worker
        (one that hung a lease but still answers ``/health``) is used only
        when nothing untainted is alive — its HTTP server accepts fresh
        lease threads even while the stuck one sleeps.
        """
        if probe:
            for worker, st in enumerate(state):
                if st["alive"] and clients[worker].health() is None:
                    st["alive"] = False
        healthy = [
            w for w, st in enumerate(state)
            if st["alive"] and not st["tainted"]
        ]
        if healthy:
            return healthy
        return [w for w, st in enumerate(state) if st["alive"]]

    def _dispatch(
        self,
        items: Sequence[WorkItem],
        indices: List[int],
        worker: int,
        clients: List,
        stats: Dict[str, object],
        lease_seq,
        duplicate_of: Optional[str] = None,
    ) -> _Lease:
        lease = _Lease(f"lease-{next(lease_seq)}", worker, indices)
        lease.duplicate_of = duplicate_of
        stats["leases"] += 1
        _FABRIC_LEASES.inc()
        client = clients[worker]
        logger.debug(
            "fabric: %s -> %s (%d trial(s)%s)",
            lease.lease_id, client.address, len(indices),
            f", duplicate of {duplicate_of}" if duplicate_of else "",
        )
        obs.point(
            "fabric.lease", lease=lease.lease_id, trials=len(indices),
            worker=client.address,
        )
        payload = [items[i].to_json_dict() for i in indices]

        def run() -> None:
            stream = None
            try:
                stream = client.open_lease(lease.lease_id, payload)
                while not lease.cancel.is_set():
                    events = stream.poll(0.25)
                    for data in events:
                        if "schema" in data:
                            if data["schema"] != WORKER_SCHEMA:
                                lease.failure = (
                                    f"worker speaks {data['schema']!r}, "
                                    f"not {WORKER_SCHEMA!r}"
                                )
                                lease.cancel.set()
                            continue
                        if data.get("done"):
                            lease.completed = True
                            continue
                        try:
                            local = int(data["index"])
                            record = TrialRecord(**data["record"])
                        except (KeyError, TypeError, ValueError):
                            continue  # garbled line: neighbours stand
                        if 0 <= local < len(lease.indices):
                            lease.records[lease.indices[local]] = record
                            lease.last_progress = time.monotonic()
                    if lease.completed or stream.eof:
                        break
            except Exception as exc:  # noqa: BLE001 - any failure fails the lease
                if lease.failure is None:
                    lease.failure = f"{type(exc).__name__}: {exc}"
            finally:
                if stream is not None:
                    stream.close()
                if (
                    not lease.completed
                    and lease.failure is None
                    and not lease.cancel.is_set()
                ):
                    lease.failure = (
                        "connection ended before the done trailer "
                        "(worker died mid-chunk)"
                    )
                lease.finished_at = time.monotonic()

        lease.thread = threading.Thread(
            target=run, name=lease.lease_id, daemon=True
        )
        lease.thread.start()
        return lease

    def _monitor(
        self,
        items: Sequence[WorkItem],
        leases: List[_Lease],
        clients: List,
        state: List[Dict[str, object]],
        stats: Dict[str, object],
        lease_seq,
    ) -> None:
        """Watch a wave's leases: heartbeats, death, stragglers.

        Returns once every lease (including straggler duplicates it
        dispatched) has finished; worker busy time is accounted here for
        the idle-fraction stats.
        """
        while True:
            running = [lease for lease in leases if not lease.done]
            if not running:
                break
            now = time.monotonic()
            for lease in running:
                if now - lease.last_progress <= self.heartbeat_timeout_s:
                    continue
                # Heartbeat missed: machine dead, or lease merely stuck?
                health = clients[lease.worker].health(
                    timeout_s=min(self.heartbeat_timeout_s, 5.0)
                )
                if health is None:
                    state[lease.worker]["alive"] = False
                    lease.failure = (
                        f"no record for {self.heartbeat_timeout_s:.1f}s and "
                        "/health unreachable (worker presumed dead)"
                    )
                    _FABRIC_DEAD.inc()
                    logger.info(
                        "fabric: %s on %s missed its heartbeat; /health "
                        "probe failed — worker presumed dead, lease revoked",
                        lease.lease_id, clients[lease.worker].address,
                    )
                else:
                    state[lease.worker]["tainted"] = True
                    lease.failure = (
                        f"no record for {self.heartbeat_timeout_s:.1f}s "
                        "though /health answers (lease hung)"
                    )
                    _FABRIC_HUNG.inc()
                    logger.info(
                        "fabric: %s on %s missed its heartbeat but /health "
                        "answers — lease hung, worker tainted",
                        lease.lease_id, clients[lease.worker].address,
                    )
                lease.cancel.set()
                lease.last_progress = now  # one verdict per deadline
            self._redispatch_stragglers(
                items, leases, clients, state, stats, lease_seq
            )
            time.sleep(0.02)
        for lease in leases:
            if lease.thread is not None:
                lease.thread.join(timeout=5.0)
            end = lease.finished_at or time.monotonic()
            state[lease.worker]["busy_s"] += end - lease.started

    def _redispatch_stragglers(
        self,
        items: Sequence[WorkItem],
        leases: List[_Lease],
        clients: List,
        state: List[Dict[str, object]],
        stats: Dict[str, object],
        lease_seq,
    ) -> None:
        finished_ok = [
            lease.finished_at - lease.started
            for lease in leases
            if lease.done and lease.failure is None
        ]
        if not finished_ok:
            return
        threshold = max(
            MIN_STRAGGLER_S, self.straggler_factor * max(finished_ok)
        )
        busy = {lease.worker for lease in leases if not lease.done}
        idle = [
            worker
            for worker, st in enumerate(state)
            if st["alive"] and not st["tainted"] and worker not in busy
        ]
        now = time.monotonic()
        for lease in leases:
            if not idle:
                break
            if (
                lease.done
                or lease.redispatched
                or lease.duplicate_of is not None
                or lease.failure is not None
                or now - lease.started < threshold
            ):
                continue
            remaining = lease.missing
            if not remaining:
                continue
            # The lease is not revoked — the straggler may yet finish;
            # whichever copy of each trial lands first wins.
            duplicate = self._dispatch(
                items, remaining, idle.pop(0), clients, stats, lease_seq,
                duplicate_of=lease.lease_id,
            )
            leases.append(duplicate)
            lease.redispatched = True
            stats["stragglers_redispatched"] += 1
            _FABRIC_STRAGGLERS.inc()
            logger.info(
                "fabric: %s is straggling (%.1fs, threshold %.1fs); "
                "re-dispatched its %d remaining trial(s) as %s",
                lease.lease_id, now - lease.started, threshold,
                len(remaining), duplicate.lease_id,
            )

    def _cost_table(self) -> Dict:
        if not self.store_root:
            return {}
        from repro.experiments.cache import ResultStore

        try:
            return ResultStore(self.store_root).cost_table()
        except OSError:
            return {}


def worker_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of one subprocess-pool worker.

    ``python -m repro.experiments.backends IN.json OUT.jsonl`` reads a chunk
    of work items from ``IN.json``, runs them inline, and streams records to
    ``OUT.jsonl`` as JSON Lines — a schema header line, then one
    ``{"index": local_index, "record": {...}}`` line per completed trial,
    flushed immediately so the parent can salvage a dead worker's prefix.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 2:
        print(
            "usage: python -m repro.experiments.backends IN.json OUT.jsonl",
            file=sys.stderr,
        )
        return 2
    in_path, out_path = Path(argv[0]), Path(argv[1])
    payload = json.loads(in_path.read_text())
    if payload.get("schema") != WORKER_SCHEMA:
        print(f"unexpected work-item schema {payload.get('schema')!r}", file=sys.stderr)
        return 2
    items = [WorkItem.from_json_dict(data) for data in payload["items"]]
    chaos_mode = _arm_chaos()
    with open(out_path, "w") as out:
        out.write(json.dumps({"schema": WORKER_SCHEMA}) + "\n")
        out.flush()
        for local_index, item in enumerate(items):
            record = execute_work_item(item)
            out.write(
                json.dumps({"index": local_index, "record": asdict(record)})
                + "\n"
            )
            out.flush()
            if chaos_mode == "crash":
                os._exit(CHAOS_EXIT_STATUS)
            elif chaos_mode == "hang":
                time.sleep(3600)
            elif chaos_mode == "slow":
                time.sleep(CHAOS_SLOW_S)
    return 0


def _arm_chaos() -> Optional[str]:
    """Decide whether *this* worker (or lease) misbehaves (see chaos env docs).

    Each marker file is created atomically, so across however many workers
    share the chaos dir exactly one arms itself *per configured mode* —
    ``crash,hang`` breaks two distinct workers; the rest (and every
    retry-wave worker) run clean.  The first mode keeps the historical
    marker name ``chaos-fired`` so callers can assert it fired.
    """
    chaos_dir = os.environ.get(CHAOS_DIR_ENV)
    spec = os.environ.get(CHAOS_MODE_ENV) or ""
    modes = [mode.strip() for mode in spec.split(",") if mode.strip()]
    if not chaos_dir or not modes or any(m not in _CHAOS_MODES for m in modes):
        return None
    for k, mode in enumerate(modes):
        marker = "chaos-fired" if k == 0 else f"chaos-fired-{k}"
        try:
            fd = os.open(
                os.path.join(chaos_dir, marker),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
            os.close(fd)
        except (FileExistsError, OSError):
            continue
        return mode
    return None


# ---------------------------------------------------------------------------
# registry entries
# ---------------------------------------------------------------------------
register_backend(
    BackendSpec(
        name="inline",
        description="Run every trial in the current process (deterministic default).",
        factory=lambda workers, options: (
            _reject_options("inline", options), InlineBackend()
        )[1],
    )
)
register_backend(
    BackendSpec(
        name="process",
        description="Fan trials out over a local ProcessPoolExecutor.",
        factory=lambda workers, options: (
            _reject_options("process", options), ProcessPoolBackend(workers=workers)
        )[1],
    )
)


def _make_subprocess_pool(
    workers: Optional[int], options: Mapping[str, object]
) -> SubprocessPoolBackend:
    known = {"max_retries", "chunk_timeout_s"}
    unknown = set(options) - known
    if unknown:
        raise ExperimentError(
            f"backend 'subprocess-pool' got unknown option(s) {sorted(unknown)}; "
            f"known: {sorted(known)}"
        )
    try:
        max_retries = int(options.get("max_retries", DEFAULT_MAX_RETRIES))
        timeout = options.get("chunk_timeout_s")
        chunk_timeout_s = None if timeout is None else float(timeout)
    except (TypeError, ValueError) as exc:
        raise ExperimentError(f"bad subprocess-pool option: {exc}") from exc
    return SubprocessPoolBackend(
        workers=workers, max_retries=max_retries, chunk_timeout_s=chunk_timeout_s
    )


register_backend(
    BackendSpec(
        name="subprocess-pool",
        description=(
            "Spawn a fresh worker process per chunk, exchanging JSON; "
            "salvages and retries work from crashed or hung workers "
            "(the stepping stone to multi-machine pools)."
        ),
        factory=_make_subprocess_pool,
    )
)


def _make_remote(
    workers: Optional[int], options: Mapping[str, object]
) -> RemoteBackend:
    known = {
        "endpoints", "max_retries", "heartbeat_timeout_s", "backoff_base_s",
        "backoff_seed", "straggler_factor", "store_root",
    }
    unknown = set(options) - known
    if unknown:
        raise ExperimentError(
            f"backend 'remote' got unknown option(s) {sorted(unknown)}; "
            f"known: {sorted(known)}"
        )
    endpoints = options.get("endpoints") or ()
    if isinstance(endpoints, str):
        endpoints = [spec for spec in endpoints.split(",") if spec.strip()]
    try:
        return RemoteBackend(
            workers=workers,
            endpoints=[str(spec) for spec in endpoints],
            max_retries=int(options.get("max_retries", DEFAULT_MAX_RETRIES)),
            heartbeat_timeout_s=float(
                options.get("heartbeat_timeout_s", DEFAULT_HEARTBEAT_TIMEOUT_S)
            ),
            backoff_base_s=float(
                options.get("backoff_base_s", DEFAULT_BACKOFF_BASE_S)
            ),
            backoff_seed=int(options.get("backoff_seed", 0)),
            straggler_factor=float(
                options.get("straggler_factor", DEFAULT_STRAGGLER_FACTOR)
            ),
            store_root=(
                str(options["store_root"]) if options.get("store_root") else None
            ),
        )
    except (TypeError, ValueError) as exc:
        raise ExperimentError(f"bad remote option: {exc}") from exc


register_backend(
    BackendSpec(
        name="remote",
        description=(
            "Lease chunks to long-running HTTP workers (localhost pool by "
            "default, http:// or ssh:// endpoints for other machines); "
            "heartbeat-monitored leases salvage and retry work from dead, "
            "hung, or straggling workers, all writing one shared store."
        ),
        factory=_make_remote,
    )
)


if __name__ == "__main__":
    sys.exit(worker_main())
