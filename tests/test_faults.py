"""Fault injection and the self-healing control loop."""

import json

import pytest

from repro.core.measurement.orchestrator import MeasurementPlan, NetworkMeasurer
from repro.errors import FaultError, ReproError, ServiceError, WorkloadError
from repro.faults import (
    FAULT_NAMES,
    FaultTimeline,
    LinkDegradation,
    PREEMPTED_RATE_BPS,
    ProbeLoss,
    VmPreemption,
    attach_faults,
    generate_faults,
)
from repro.service.engine import PlacementService
from repro.service.session import _resolve_placer, build_churn_session, run_churn_session

QUICK = dict(n_vms=5, hours=2.0, epoch_s=120.0)


def _canonical(report) -> str:
    return json.dumps(report.canonical_json_dict(), sort_keys=True)


def _run_service(seed=0, fault_timeline=None, predictor="combined", **kwargs):
    params = dict(QUICK, **kwargs)
    provider, cluster, apps, _ = build_churn_session(seed, **params)
    if fault_timeline is not None:
        attach_faults(provider, fault_timeline)
    service = PlacementService(
        provider, cluster, _resolve_placer("greedy", seed, None),
        predictor=predictor,
    )
    return service.run_session(apps, hours=params["hours"])


# ------------------------------------------------------------------ events
def test_event_validation_rejects_nonsense():
    with pytest.raises(FaultError):
        LinkDegradation(vm="vm1", start_s=10.0, end_s=5.0, multiplier=0.5)
    with pytest.raises(FaultError):
        LinkDegradation(vm="vm1", start_s=0.0, end_s=5.0, multiplier=1.5)
    with pytest.raises(FaultError):
        VmPreemption(vm="vm1", time_s=-1.0)
    with pytest.raises(FaultError):
        ProbeLoss(src="vm1", dst="vm1", start_s=0.0, end_s=5.0)
    with pytest.raises(FaultError):
        ProbeLoss(src="vm1", dst="vm2", start_s=0.0, end_s=5.0, mode="nope")


def test_timeline_sorts_events_and_reports_window_membership():
    timeline = FaultTimeline(events=(
        ProbeLoss(src="a", dst="b", start_s=500.0, end_s=600.0),
        VmPreemption(vm="c", time_s=100.0),
        LinkDegradation(vm="a", start_s=300.0, end_s=400.0, multiplier=0.5),
    ))
    assert [e.effect_time_s for e in timeline.events] == [100.0, 300.0, 500.0]
    assert len(timeline.events_between(0.0, 100.0)) == 1  # (t0, t1] window
    assert len(timeline.events_between(100.0, 600.0)) == 2
    assert timeline.pending_after(400.0)
    assert not timeline.pending_after(500.0)


def test_fault_effects_on_rates_and_probes():
    timeline = FaultTimeline(events=(
        VmPreemption(vm="dead", time_s=100.0),
        LinkDegradation(vm="slow", start_s=50.0, end_s=150.0, multiplier=0.25),
        ProbeLoss(src="a", dst="b", start_s=0.0, end_s=10.0, mode="fail"),
    ))
    assert timeline.effective_hose_rate("dead", 99.0, 1e9) == 1e9
    assert timeline.effective_hose_rate("dead", 100.0, 1e9) == PREEMPTED_RATE_BPS
    assert timeline.effective_hose_rate("slow", 100.0, 1e9) == 0.25e9
    assert timeline.effective_hose_rate("slow", 200.0, 1e9) == 1e9
    assert timeline.probe_fault("a", "b", 5.0) == ("fail", 0.0)
    assert timeline.probe_fault("a", "b", 10.0) is None
    # Probes touching a preempted endpoint fail outright.
    assert timeline.probe_fault("dead", "a", 150.0) == ("fail", 0.0)


# -------------------------------------------------------------- persistence
def test_save_load_round_trip(tmp_path):
    timeline = generate_faults(
        [f"vm{i}" for i in range(1, 7)], n_epochs=4, faults="link-flap",
        seed=3, epoch_s=300.0,
    )
    assert not timeline.is_empty
    path = tmp_path / "faults.json"
    timeline.save(path)
    loaded = FaultTimeline.load(path)
    assert loaded.events == timeline.events
    assert loaded.generator == timeline.generator


def test_load_errors_name_the_file_and_field(tmp_path):
    with pytest.raises(FaultError, match="missing.json"):
        FaultTimeline.load(tmp_path / "missing.json")

    bad_schema = tmp_path / "bad_schema.json"
    bad_schema.write_text(json.dumps({"schema": "other", "events": []}))
    with pytest.raises(FaultError, match="bad_schema.json"):
        FaultTimeline.load(bad_schema)

    missing_field = tmp_path / "missing_field.json"
    missing_field.write_text(json.dumps({
        "schema": "repro.faults/timeline/v1",
        "generator": "recorded",
        "events": [{"kind": "vm-preemption"}],
    }))
    with pytest.raises(FaultError, match="missing field"):
        FaultTimeline.load(missing_field)


def test_timeline_load_error_names_missing_field(tmp_path):
    from repro.service.timeline import NetworkTimeline

    path = tmp_path / "t.json"
    path.write_text(json.dumps({
        "schema": "repro.service/timeline/v1", "hose_epochs": [],
    }))
    with pytest.raises(ServiceError, match="missing field"):
        NetworkTimeline.load(path)


def test_trace_read_errors_name_the_file(tmp_path):
    from repro.workloads.trace import read_trace, read_trace_jsonl

    with pytest.raises(WorkloadError, match="nope.csv"):
        read_trace(tmp_path / "nope.csv")
    with pytest.raises(WorkloadError, match="nope.jsonl"):
        read_trace_jsonl(tmp_path / "nope.jsonl")


# --------------------------------------------------------------- generators
def test_generators_are_deterministic_and_registered():
    assert set(FAULT_NAMES) == {
        "none", "random-preempt", "rack-outage", "link-flap", "lossy-probes",
    }
    vms = [f"vm{i}" for i in range(1, 9)]
    for name in FAULT_NAMES:
        a = generate_faults(vms, n_epochs=4, faults=name, seed=11)
        b = generate_faults(vms, n_epochs=4, faults=name, seed=11)
        assert a.events == b.events
    assert generate_faults(vms, n_epochs=4, faults="none", seed=0).is_empty
    assert generate_faults(
        vms, n_epochs=4, faults="random-preempt", seed=0, strength=0.0
    ).is_empty


def test_random_preempt_never_kills_below_min_survivors():
    vms = [f"vm{i}" for i in range(1, 6)]
    timeline = generate_faults(
        vms, n_epochs=6, faults="random-preempt", seed=5, strength=1.0
    )
    preempted = {e.vm for e in timeline.events}
    assert len(vms) - len(preempted) >= 3


def test_rack_outage_takes_whole_racks_in_one_epoch_window():
    vms = [f"vm{i}" for i in range(12)]
    racks = {vm: f"rack-{i // 4}" for i, vm in enumerate(vms)}
    timeline = generate_faults(
        vms, n_epochs=6, faults="rack-outage", seed=3, racks=racks,
        epoch_s=100.0,
    )
    assert not timeline.is_empty
    by_rack = {}
    for event in timeline.events:
        assert isinstance(event, VmPreemption)
        by_rack.setdefault(racks[event.vm], []).append(event)
    for rack, events in by_rack.items():
        # Correlated: every VM behind the dying ToR goes, and all inside
        # the same epoch window (per-VM offsets within it).
        assert len(events) == 4, f"{rack} lost only {len(events)} of 4 VMs"
        assert len({int(e.time_s // 100.0) for e in events}) == 1


def test_rack_outage_always_spares_a_rack_and_min_survivors():
    vms = [f"vm{i}" for i in range(12)]
    racks = {vm: f"rack-{i // 4}" for i, vm in enumerate(vms)}
    timeline = generate_faults(
        vms, n_epochs=6, faults="rack-outage", seed=3, strength=10.0,
        racks=racks,
    )
    dead_racks = {racks[e.vm] for e in timeline.events}
    assert len(dead_racks) < len(set(racks.values()))
    assert len(vms) - len({e.vm for e in timeline.events}) >= 3


def test_rack_outage_pseudo_rack_fallback_and_determinism():
    vms = [f"vm{i}" for i in range(8)]
    a = generate_faults(vms, n_epochs=4, faults="rack-outage", seed=9)
    b = generate_faults(vms, n_epochs=4, faults="rack-outage", seed=9)
    assert a.events == b.events and not a.is_empty
    # A single rack (or fewer VMs than one pseudo-rack) is never taken out.
    tiny = generate_faults(vms[:3], n_epochs=4, faults="rack-outage", seed=9)
    assert tiny.is_empty


def test_rack_outage_churn_session_preempts_one_tor():
    provider, _, _, _ = build_churn_session(
        0, n_vms=8, hours=3.0, epoch_s=60.0,
        faults="rack-outage", fault_strength=0.3,
    )
    timeline = provider.fault_timeline
    assert not timeline.is_empty
    racks = {
        vm.name: provider.topology.rack_of(vm.host) for vm in provider.vms()
    }
    dead_racks = {racks[e.vm] for e in timeline.events}
    live_racks = set(racks.values()) - dead_racks
    assert dead_racks and live_racks
    # Whole racks die: every VM sharing a dead ToR is preempted.
    preempted = {e.vm for e in timeline.events}
    for vm, rack in racks.items():
        assert (rack in dead_racks) == (vm in preempted)


def test_rack_outage_fault_churn_scenario_runs():
    from repro.experiments.trials import run_trial

    params = {
        "n_vms": 6, "hours": 2, "epoch_s": 120.0,
        "faults": "rack-outage", "fault_strength": 0.4,
    }
    rec = run_trial("fault-churn", "greedy", 0, 0, params)
    assert rec.status == "ok", rec.error


def test_unknown_generator_and_foreign_vms_fail():
    with pytest.raises(FaultError):
        generate_faults(["a", "b"], n_epochs=2, faults="martian-invasion")
    provider, _, _, _ = build_churn_session(0, **QUICK)
    foreign = FaultTimeline(events=(VmPreemption(vm="not-a-vm", time_s=10.0),))
    with pytest.raises(FaultError):
        attach_faults(provider, foreign)


# ------------------------------------------------------------- bit-identity
def test_empty_fault_timeline_is_bit_identical_to_no_faults():
    baseline = _run_service(seed=3)
    with_empty = _run_service(seed=3, fault_timeline=FaultTimeline())
    assert _canonical(baseline) == _canonical(with_empty)


def test_faults_none_session_kwarg_is_bit_identical():
    plain = run_churn_session(0, predictor="combined", **QUICK)
    explicit = run_churn_session(0, predictor="combined", faults="none", **QUICK)
    assert _canonical(plain) == _canonical(explicit)


def test_faulted_session_is_deterministic():
    kwargs = dict(QUICK, faults="random-preempt")
    a = run_churn_session(2, predictor="combined", **kwargs)
    b = run_churn_session(2, predictor="combined", **kwargs)
    assert _canonical(a) == _canonical(b)


def test_fault_churn_scenario_is_deterministic():
    from repro.experiments.trials import run_trial

    params = {"n_vms": 5, "hours": 2, "epoch_s": 120.0}
    recs = [
        run_trial("fault-churn", "greedy", 0, 0, params) for _ in range(2)
    ]
    assert all(rec.ok for rec in recs)
    assert recs[0].per_app_duration_s == recs[1].per_app_duration_s
    assert recs[0].total_running_time_s == recs[1].total_running_time_s


# ----------------------------------------------------------------- recovery
def test_preemption_mid_session_recovers_or_rejects():
    provider, cluster, apps, _ = build_churn_session(0, **QUICK)
    victims = [vm.name for vm in provider.vms()][:2]
    attach_faults(provider, FaultTimeline(events=tuple(
        VmPreemption(vm=vm, time_s=100.0 + 50.0 * i)
        for i, vm in enumerate(victims)
    )))
    service = PlacementService(
        provider, cluster, _resolve_placer("greedy", 0, None),
        predictor="combined",
    )
    report = service.run_session(apps, hours=QUICK["hours"])
    assert all(o.status in ("completed", "rejected") for o in report.apps)
    preemptions = [a for a in report.recovery if a.kind == "vm-preemption"]
    assert {a.target for a in preemptions} == set(victims)
    for action in preemptions:
        assert action.latency_s >= 0.0
    # The service's cluster no longer contains the preempted VMs.
    survivors = set(service.cluster.machine_names())
    assert survivors.isdisjoint(victims)
    # Recoveries surface in per-app outcomes when tasks were re-placed.
    replaced_apps = [
        name for a in preemptions if a.action == "re-placed" for name in a.apps
    ]
    by_name = {o.name: o for o in report.apps}
    for name in replaced_apps:
        assert by_name[name].recoveries >= 1


def test_probe_loss_burst_degrades_pairs_without_crashing():
    provider, cluster, apps, _ = build_churn_session(
        0, n_vms=5, hours=3.0, epoch_s=120.0
    )
    vms = [vm.name for vm in provider.vms()]
    attach_faults(provider, FaultTimeline(events=(
        ProbeLoss(src=vms[0], dst=vms[1], start_s=121.0, end_s=1e9),
        ProbeLoss(src=vms[1], dst=vms[0], start_s=121.0, end_s=1e9),
    )))
    service = PlacementService(
        provider, cluster, _resolve_placer("greedy", 0, None),
        predictor="combined",
    )
    report = service.run_session(apps, hours=3.0)
    assert all(o.status in ("completed", "rejected") for o in report.apps)
    assert report.measurement.get("pairs_degraded", 0) >= 1


def test_recovery_actions_serialise_into_the_report():
    report = _run_service(seed=0, fault_timeline=FaultTimeline(events=(
        VmPreemption(vm="vm1", time_s=100.0),
    )))
    payload = report.to_json_dict()
    assert "recovery" in payload
    assert payload["recovery"], "expected at least one recovery action"
    entry = payload["recovery"][0]
    assert entry["kind"] == "vm-preemption"
    assert entry["target"] == "vm1"
    assert entry["latency_s"] >= 0.0


# -------------------------------------------------------------- measurement
def test_measurer_retries_then_degrades_and_charges_backoff():
    provider, _, _, _ = build_churn_session(0, **QUICK)
    vms = [vm.name for vm in provider.vms()][:3]
    attach_faults(provider, FaultTimeline(events=(
        ProbeLoss(src=vms[0], dst=vms[1], start_s=0.0, end_s=1e9),
    )))
    plan = MeasurementPlan(
        advance_clock=False, max_retries=2, retry_backoff_s=4.0
    )
    # Baseline with retries disabled: same campaign shape, no backoff cost.
    no_retry_duration = NetworkMeasurer(
        provider, plan=MeasurementPlan(advance_clock=False, max_retries=0)
    ).measure(vms).measurement_duration_s

    profile = NetworkMeasurer(provider, plan=plan).measure(vms)
    assert (vms[0], vms[1]) in profile.degraded_pairs
    assert "3 probe(s) failed" in profile.degraded_pairs[(vms[0], vms[1])]
    assert (vms[0], vms[1]) not in profile.rates_bps
    assert (vms[1], vms[0]) in profile.rates_bps
    # Two retries with doubling backoff cost 4 + 8 seconds plus re-probes.
    assert profile.measurement_duration_s > no_retry_duration + 12.0


def test_probe_budget_caps_retries():
    provider, _, _, _ = build_churn_session(0, **QUICK)
    vms = [vm.name for vm in provider.vms()][:3]
    attach_faults(provider, FaultTimeline(events=(
        ProbeLoss(src=vms[0], dst=vms[1], start_s=0.0, end_s=1e9),
        ProbeLoss(src=vms[1], dst=vms[2], start_s=0.0, end_s=1e9),
    )))
    plan = MeasurementPlan(
        advance_clock=False, max_retries=5, retry_backoff_s=1.0, probe_budget=1
    )
    profile = NetworkMeasurer(provider, plan=plan).measure(vms)
    assert len(profile.degraded_pairs) == 2
    assert any(
        "probe budget exhausted" in why
        for why in profile.degraded_pairs.values()
    )


def test_wild_probe_estimates_skew_the_measured_rate():
    kwargs = dict(QUICK)
    provider, _, _, _ = build_churn_session(0, **kwargs)
    vms = [vm.name for vm in provider.vms()][:2]
    clean = NetworkMeasurer(
        provider, plan=MeasurementPlan(advance_clock=False)
    ).measure(vms)

    provider2, _, _, _ = build_churn_session(0, **kwargs)
    attach_faults(provider2, FaultTimeline(events=(
        ProbeLoss(src=vms[0], dst=vms[1], start_s=0.0, end_s=1e9,
                  mode="wild", factor=4.0),
    )))
    wild = NetworkMeasurer(
        provider2, plan=MeasurementPlan(advance_clock=False)
    ).measure(vms)
    pair = (vms[0], vms[1])
    assert wild.rates_bps[pair] > clean.rates_bps[pair]
    assert not wild.degraded_pairs


def test_cache_ttl_exact_boundary_is_still_fresh():
    provider, _, _, _ = build_churn_session(0, **QUICK)
    from repro.service.cache import MeasurementCache

    vms = [vm.name for vm in provider.vms()][:3]
    measurer = NetworkMeasurer(provider, plan=MeasurementPlan(advance_clock=False))
    cache = MeasurementCache(measurer, vms, ttl_s=60.0)
    cache.refresh(0.0)
    newest = max(
        age for pair in cache.mesh_pairs()
        if (age := cache.age_of(pair, 0.0)) is not None
    )
    # Pairs are stamped with their probe time; exactly ttl_s after the
    # *newest* stamp the oldest pairs are stale but the newest is not.
    boundary = 60.0 - newest  # age of newest pair at t=boundary is ttl
    assert all(
        cache.age_of(pair, boundary) is not None for pair in cache.mesh_pairs()
    )
    stale = cache.stale_pairs(boundary)
    newest_pairs = [
        p for p in cache.mesh_pairs() if cache.age_of(p, boundary) == 60.0
    ]
    assert newest_pairs, "expected a pair aged exactly ttl_s"
    for pair in newest_pairs:
        assert pair not in stale  # strict: goes stale the instant *after*
    epsilon = 1e-6
    assert all(p in cache.stale_pairs(boundary + epsilon) for p in newest_pairs)


def test_cache_remove_vm_and_invalidate_pairs():
    provider, _, _, _ = build_churn_session(0, **QUICK)
    from repro.service.cache import MeasurementCache

    vms = [vm.name for vm in provider.vms()][:4]
    measurer = NetworkMeasurer(provider, plan=MeasurementPlan(advance_clock=False))
    cache = MeasurementCache(measurer, vms, ttl_s=3600.0)
    cache.refresh(0.0)
    cache.remove_vm(vms[0])
    assert vms[0] not in cache.vms
    profile = cache.profile(0.0)
    assert all(vms[0] not in pair for pair in profile.rates_bps)

    touched = [p for p in cache.mesh_pairs() if vms[1] in p]
    assert cache.invalidate_pairs(touched) == len(touched)
    assert set(cache.stale_pairs(1.0)) == set(touched)
    with pytest.raises(ReproError):
        cache.remove_vm("not-covered")
