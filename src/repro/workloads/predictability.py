"""Hour-over-hour traffic predictability analysis (paper §6.1).

Choreo assumes an application's offline profile predicts its online
behaviour.  The paper justifies this with the HP Cloud dataset: "data from
the previous hour and the time-of-day are good predictors of the number of
bytes transferred in the next hour".  This module reproduces that analysis
on any hourly byte series: it implements the previous-hour predictor, the
time-of-day predictor (mean of the same hour on previous days), a combined
predictor (average of the two), and computes their relative-error
distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import WorkloadError

HOURS_PER_DAY = 24

Predictor = Callable[[Sequence[float], int], Optional[float]]


def previous_hour_predictor(series: Sequence[float], hour: int) -> Optional[float]:
    """Predict hour ``hour`` as the value of the previous hour."""
    if hour < 1:
        return None
    return float(series[hour - 1])


def time_of_day_predictor(series: Sequence[float], hour: int) -> Optional[float]:
    """Predict hour ``hour`` as the mean of the same time-of-day on prior days."""
    history = [
        series[h]
        for h in range(hour % HOURS_PER_DAY, hour, HOURS_PER_DAY)
    ]
    if not history:
        return None
    return float(np.mean(history))


def combined_predictor(series: Sequence[float], hour: int) -> Optional[float]:
    """Average of the previous-hour and time-of-day predictors.

    Falls back to whichever component is available when the other has no
    history yet.
    """
    parts = [
        value
        for value in (
            previous_hour_predictor(series, hour),
            time_of_day_predictor(series, hour),
        )
        if value is not None
    ]
    if not parts:
        return None
    return float(np.mean(parts))


@dataclass
class PredictabilityReport:
    """Relative-error summary for one predictor on one or more series."""

    predictor_name: str
    relative_errors: List[float]

    @property
    def n_predictions(self) -> int:
        return len(self.relative_errors)

    @property
    def median_error(self) -> float:
        if not self.relative_errors:
            raise WorkloadError("no predictions were made")
        return float(np.median(self.relative_errors))

    @property
    def mean_error(self) -> float:
        if not self.relative_errors:
            raise WorkloadError("no predictions were made")
        return float(np.mean(self.relative_errors))

    def fraction_within(self, tolerance: float) -> float:
        """Fraction of predictions with relative error <= ``tolerance``."""
        if not self.relative_errors:
            raise WorkloadError("no predictions were made")
        hits = sum(1 for err in self.relative_errors if err <= tolerance)
        return hits / len(self.relative_errors)


def _relative_error(actual: float, predicted: float) -> float:
    """Magnitude of relative error, guarding the zero-traffic case."""
    if actual == 0.0 and predicted == 0.0:
        return 0.0
    denominator = max(abs(actual), 1.0)
    return abs(actual - predicted) / denominator


def evaluate_predictability(
    series_collection: Sequence[Sequence[float]],
    predictors: Optional[Dict[str, Predictor]] = None,
    warmup_hours: int = HOURS_PER_DAY,
) -> Dict[str, PredictabilityReport]:
    """Evaluate predictors on hourly byte series.

    Args:
        series_collection: one hourly byte series per application.
        predictors: mapping of name to predictor function; defaults to the
            three predictors discussed in §6.1.
        warmup_hours: hours at the start of each series that are skipped
            (the time-of-day predictor needs at least one full day).

    Returns:
        Mapping of predictor name to its :class:`PredictabilityReport`.
    """
    if predictors is None:
        predictors = {
            "previous-hour": previous_hour_predictor,
            "time-of-day": time_of_day_predictor,
            "combined": combined_predictor,
        }
    if warmup_hours < 1:
        raise WorkloadError("warmup_hours must be >= 1")

    errors: Dict[str, List[float]] = {name: [] for name in predictors}
    for series in series_collection:
        if len(series) <= warmup_hours:
            continue
        for hour in range(warmup_hours, len(series)):
            for name, predictor in predictors.items():
                predicted = predictor(series, hour)
                if predicted is None:
                    continue
                errors[name].append(_relative_error(float(series[hour]), predicted))

    return {
        name: PredictabilityReport(predictor_name=name, relative_errors=errs)
        for name, errs in errors.items()
    }
