"""Optimal task placement (the paper's Appendix), made sweep-grade.

The Appendix formulates completion-time-minimising placement as a quadratic
program over the assignment matrix ``X`` and linearises it by introducing a
variable ``z_imjn`` for each product ``X_im * X_jn``.  We implement that
linearised program with ``scipy.optimize.milp`` (the HiGHS solver) in two
formulations:

* ``"dense"`` — the literal textbook linearisation kept as the A/B
  reference: every product gets a binary variable and the standard
  three-inequality linearisation (``z <= X_im``, ``z <= X_jn``,
  ``z >= X_im + X_jn - 1``).
* ``"sparse"`` (default) — the sweep-grade formulation.  Product columns
  are only materialised for task pairs with nonzero traffic and machine
  (pairs) that are CPU-feasible and carry a finite-rate bottleneck term,
  and because every product appears with non-negative coefficients only in
  constraints that lower-bound the minimised completion time, product
  integrality and the two ``z <= X`` rows are redundant at the optimum:
  products are continuous with a single lower-bounding row each.  Under the
  hose model the formulation is collapsed further: machine ``a``'s egress
  term for pair ``(i, j)`` is ``X_im * (1 - X_jm)`` — it depends on whether
  the peer is colocated, not where it sits — so one variable
  ``w >= X_im - X_jm`` per (pair, machine) replaces the machine-pair slab
  ``z_imjn``, shrinking products from O(P·M²) to O(P·M) with a tight
  relaxation.  The constraint matrix is assembled as COO triplet batches
  instead of a Python dict per row.

On top of the sparse formulation the placer supports:

* **warm starts** — :class:`~repro.core.placement.greedy.GreedyPlacer` runs
  first and its completion-time estimate becomes an upper bound on the
  objective variable (a valid cut: the greedy placement is feasible, so the
  optimum can never exceed it), which lets HiGHS prune aggressively.
  ``scipy`` does not expose HiGHS's MIP-start vector, so the incumbent is
  additionally kept as a *fallback*: if the solver exhausts its budget
  without any feasible solution, the greedy placement is returned rather
  than raising.  A greedy failure (greedy can dead-end on CPU packing where
  an optimal assignment exists) is rejected gracefully: the solve simply
  proceeds cold.
* **symmetry breaking** — lexicographic ordering constraints over machines
  that are interchangeable under the network profile (equal free CPU and,
  for the hose model, equal hose rates; for the pipe model, identical rate
  rows/columns under the swap), exactness-preserving because any optimum
  can be permuted into the lexicographic representative.
* **candidate restriction** — ``candidate_k`` keeps only the top-k machines
  per task by greedy effective rate (plus the machine the warm start chose,
  so the incumbent stays representable).  Exact when ``candidate_k`` covers
  every machine; otherwise a heuristic whose result is never worse than the
  greedy incumbent.  A restricted solve that comes back infeasible is
  retried unrestricted, so the restriction can never manufacture failure.

Two bottleneck ("sharing") models are supported, matching
:func:`repro.core.estimator.estimate_completion_time`:

* ``"hose"`` — flows leaving a machine share its egress cap (what §4.4
  finds on EC2/Rackspace; the Appendix notes the hose model corresponds to
  ``S_{mi,mj} = 1``);
* ``"pipe"`` — every ordered machine pair is its own bottleneck (the
  Appendix's default when the shared-bottleneck matrix ``S`` is unknown).

:class:`BruteForcePlacer` enumerates every feasible assignment and is used
to validate the MILP on tiny instances.
"""

from __future__ import annotations

import contextlib
import itertools
import math
import os
import sys
import time
from typing import Dict, List, Optional, Tuple, Union

import numpy as np
from scipy import optimize, sparse

from repro import obs
from repro.core.estimator import estimate_completion_time
from repro.core.network_profile import NetworkProfile
from repro.core.placement.base import (
    ClusterState,
    Placement,
    Placer,
    cpu_feasible_machines,
    validate_placement,
)
from repro.core.placement.greedy import greedy_incumbent, machine_rate_scores
from repro.errors import PlacementError
from repro.units import BITS_PER_BYTE
from repro.workloads.application import Application

_EPS = 1e-9
#: Slack on the warm-start objective cut: the MILP's bottleneck sums and the
#: estimator accumulate the same terms in different orders, so the incumbent
#: may sit a few ulps above its constraint-side value.
_WARM_SLACK = 1e-6

FORMULATIONS = ("sparse", "dense")

#: Below this assignment-grid size (tasks x machines) the auto-tuner keeps
#: every machine: up to roughly 24 tasks on 24 machines HiGHS finds better
#: incumbents unrestricted within ordinary per-cell budgets, so restricting
#: there would trade exactness for nothing (measured in the ilp_scale
#: bench's regime).
_AUTO_EXACT_CELLS = 600
#: Product-variable budget the auto-tuner sizes ``k`` against: under the
#: hose model the sparse formulation materialises O(pairs x k) colocation
#: variables, and HiGHS stays inside per-cell sweep budgets up to a few
#: thousand of them.
_AUTO_PRODUCT_BUDGET = 4000
#: Never restrict below this many machines per task — the restriction is a
#: heuristic and too-thin candidate sets trade exactness for nothing.
_AUTO_MIN_K = 3


def auto_candidate_k(
    n_tasks: int, n_machines: int, n_pairs: Optional[int] = None
) -> Optional[int]:
    """Pick ``candidate_k`` from the instance size (``None`` = keep all).

    Small instances (``tasks x machines <= _AUTO_EXACT_CELLS``) stay exact.
    Larger ones get the largest ``k`` that keeps the product-variable count
    near ``_AUTO_PRODUCT_BUDGET``, floored at ``_AUTO_MIN_K`` — this is what
    lets budgeted sweeps scale past ~20 tasks without hand-tuning ``k`` per
    scenario.  The infeasibility retry in the solver makes the restriction
    safe regardless of how aggressive the tuner is.
    """
    if n_tasks < 1 or n_machines < 1:
        raise PlacementError("auto_candidate_k needs a non-empty instance")
    if n_pairs is None:
        n_pairs = n_tasks * (n_tasks - 1) // 2
    if n_tasks * n_machines <= _AUTO_EXACT_CELLS:
        return None
    k = _AUTO_PRODUCT_BUDGET // max(n_pairs, 1)
    k = max(_AUTO_MIN_K, min(k, n_machines))
    return None if k >= n_machines else k


@contextlib.contextmanager
def _silence_native_stdout():
    """Mute the C-level stdout for the duration of a solve.

    Some HiGHS builds print a stray debug line
    (``HighsMipSolverData::transformNewIntegerFeasibleSolution ...``)
    straight to fd 1 even with display off, which corrupts machine-readable
    CLI output.  When stdout has no real file descriptor (e.g. under a
    capturing test harness) this is a no-op.
    """
    try:
        fd = sys.stdout.fileno()
    except (OSError, ValueError, AttributeError):
        yield
        return
    sys.stdout.flush()
    saved = os.dup(fd)
    try:
        with open(os.devnull, "wb") as devnull:
            os.dup2(devnull.fileno(), fd)
            yield
    finally:
        os.dup2(saved, fd)
        os.close(saved)


def _communicating_pairs(
    app: Application, task_index: Dict[str, int]
) -> Tuple[List[Tuple[int, int]], Dict[Tuple[int, int], Tuple[float, float]]]:
    """Unordered communicating task pairs and their directed volumes."""
    volumes: Dict[Tuple[int, int], Tuple[float, float]] = {}
    for src, dst, volume in app.transfers():
        i, j = task_index[src], task_index[dst]
        lo, hi = (i, j) if i < j else (j, i)
        fwd, rev = volumes.get((lo, hi), (0.0, 0.0))
        if i < j:
            fwd += volume
        else:
            rev += volume
        volumes[(lo, hi)] = (fwd, rev)
    return sorted(volumes), volumes


class OptimalPlacer(Placer):
    """Solve the Appendix's linearised placement program with HiGHS.

    Args:
        model: ``"hose"`` or ``"pipe"`` bottleneck model.
        time_limit_s: solver time limit; the best incumbent (or the greedy
            fallback, when warm-started) is used if the limit is reached.
        mip_rel_gap: relative MIP gap at which the solver may stop.
        formulation: ``"sparse"`` (pruned, default) or ``"dense"`` (the
            original full product grid, kept as the A/B reference).
        warm_start: seed the solve with the greedy placement (objective
            bound + budget-exhaustion fallback).  A greedy failure is
            tolerated: the solve proceeds cold.
        symmetry_breaking: add lexicographic ordering constraints over
            interchangeable machines (sparse formulation only).
        candidate_k: restrict each task to its top-k machines by greedy
            effective rate (plus the warm-start machine).  ``None`` keeps
            every machine and is exact; ``"auto"`` picks k per instance via
            :func:`auto_candidate_k` (exact on small instances, budgeted on
            large ones).
    """

    name = "choreo-optimal"

    def __init__(
        self,
        model: str = "hose",
        time_limit_s: float = 60.0,
        mip_rel_gap: float = 1e-4,
        formulation: str = "sparse",
        warm_start: bool = True,
        symmetry_breaking: bool = True,
        candidate_k: Union[int, str, None] = None,
    ):
        if model not in ("hose", "pipe"):
            raise PlacementError(f"unknown rate model {model!r}")
        if time_limit_s <= 0:
            raise PlacementError("time_limit_s must be positive")
        if formulation not in FORMULATIONS:
            raise PlacementError(
                f"unknown formulation {formulation!r}; known: {FORMULATIONS}"
            )
        if isinstance(candidate_k, str):
            if candidate_k != "auto":
                raise PlacementError(
                    f"candidate_k must be an int, None, or 'auto'; "
                    f"got {candidate_k!r}"
                )
        elif candidate_k is not None and candidate_k < 1:
            raise PlacementError("candidate_k must be >= 1 (or None for all)")
        self.model = model
        self.time_limit_s = time_limit_s
        self.mip_rel_gap = mip_rel_gap
        self.formulation = formulation
        self.warm_start = warm_start
        self.symmetry_breaking = symmetry_breaking
        self.candidate_k = candidate_k
        #: The restriction used by the solve in flight (``"auto"`` resolved
        #: per instance at :meth:`place` time).
        self._active_candidate_k: Optional[int] = None
        #: Stats of the most recent :meth:`place` call.
        self.last_solve_stats: Optional[Dict[str, object]] = None
        #: ``(app_name, stats)`` per :meth:`place` call on this instance.
        self.stats_history: List[Tuple[str, Dict[str, object]]] = []

    # -------------------------------------------------------------- solving
    def place(
        self,
        app: Application,
        cluster: ClusterState,
        profile: Optional[NetworkProfile] = None,
    ) -> Placement:
        with obs.span(
            "place.ilp",
            app=app.name,
            tasks=len(app.task_names),
            machines=len(cluster.machine_names()),
            formulation=self.formulation,
        ):
            return self._place(app, cluster, profile)

    def _place(
        self,
        app: Application,
        cluster: ClusterState,
        profile: Optional[NetworkProfile] = None,
    ) -> Placement:
        if profile is None:
            raise PlacementError("the optimal placer needs a network profile")
        self.check_feasible(app, cluster)
        started = time.perf_counter()

        tasks = app.task_names
        machines = cluster.machine_names()
        task_index = {t: i for i, t in enumerate(tasks)}
        pairs, volumes = _communicating_pairs(app, task_index)

        incumbent: Optional[Placement] = None
        warm_bound: Optional[float] = None
        if self.warm_start:
            with obs.span("place.ilp.warm_start", app=app.name):
                incumbent = greedy_incumbent(
                    app, cluster, profile, model=self.model
                )
                if incumbent is not None:
                    warm_bound = estimate_completion_time(
                        incumbent.assignments, app, profile, model=self.model
                    )

        n_tasks, n_machines = len(tasks), len(machines)
        if self.candidate_k == "auto":
            self._active_candidate_k = auto_candidate_k(
                n_tasks, n_machines, len(pairs)
            )
        else:
            self._active_candidate_k = self.candidate_k
        stats: Dict[str, object] = {
            "formulation": self.formulation,
            "model": self.model,
            "n_tasks": n_tasks,
            "n_machines": n_machines,
            "n_pairs": len(pairs),
            "candidate_k": self._active_candidate_k,
            "warm_start_accepted": incumbent is not None,
            "warm_bound_s": warm_bound,
            "fallback_used": False,
            "restriction_retried": False,
            # The size the textbook formulation would have, for comparison.
            "dense_vars": n_tasks * n_machines + len(pairs) * n_machines ** 2 + 1,
            "dense_rows": (
                n_tasks + n_machines + 3 * len(pairs) * n_machines ** 2
            ),
        }

        with obs.span(
            "place.ilp.solve", app=app.name, formulation=self.formulation
        ):
            if self.formulation == "dense":
                placement = self._solve_dense(
                    app, cluster, profile, tasks, machines, pairs, volumes,
                    warm_bound, incumbent, stats,
                )
            else:
                placement = self._solve_sparse(
                    app, cluster, profile, tasks, machines, pairs, volumes,
                    warm_bound, incumbent, stats,
                )

        stats["solve_wall_s"] = round(time.perf_counter() - started, 6)
        stats["objective_s"] = estimate_completion_time(
            placement.assignments, app, profile, model=self.model
        )
        self.last_solve_stats = stats
        self.stats_history.append((app.name, stats))
        validate_placement(placement, app, cluster)
        return placement

    # ---------------------------------------------------------- shared bits
    def _run_milp(
        self,
        n_vars: int,
        t_col: int,
        integrality: np.ndarray,
        upper: np.ndarray,
        triplets: Tuple[List[float], List[int], List[int]],
        row_lbs: List[float],
        row_ubs: List[float],
    ):
        data, row_idx, col_idx = triplets
        matrix = sparse.csr_matrix(
            (data, (row_idx, col_idx)), shape=(len(row_lbs), n_vars)
        )
        objective = np.zeros(n_vars)
        objective[t_col] = 1.0
        bounds = optimize.Bounds(lb=np.zeros(n_vars), ub=upper)
        with _silence_native_stdout():
            return optimize.milp(
                c=objective,
                constraints=optimize.LinearConstraint(matrix, row_lbs, row_ubs),
                integrality=integrality,
                bounds=bounds,
                options={
                    "time_limit": self.time_limit_s,
                    "mip_rel_gap": self.mip_rel_gap,
                    "disp": False,
                },
            )

    @staticmethod
    def _record_solver_outcome(stats: Dict[str, object], result) -> None:
        stats["status"] = int(result.status)
        stats["mip_gap"] = (
            float(result.mip_gap) if getattr(result, "mip_gap", None) is not None
            else None
        )
        stats["mip_nodes"] = (
            int(result.mip_node_count)
            if getattr(result, "mip_node_count", None) is not None
            else None
        )

    def _fallback_or_raise(
        self,
        app: Application,
        incumbent: Optional[Placement],
        stats: Dict[str, object],
        message: str,
    ) -> Placement:
        if incumbent is not None:
            stats["fallback_used"] = True
            return incumbent
        raise PlacementError(
            f"optimal placement failed for {app.name!r}: {message}"
        )

    @staticmethod
    def _warm_upper(warm_bound: Optional[float]) -> float:
        if warm_bound is None or math.isinf(warm_bound):
            return np.inf
        return warm_bound * (1.0 + _WARM_SLACK) + _EPS

    # ------------------------------------------------------------ sparse MILP
    def _solve_sparse(
        self,
        app: Application,
        cluster: ClusterState,
        profile: NetworkProfile,
        tasks: List[str],
        machines: List[str],
        pairs: List[Tuple[int, int]],
        volumes: Dict[Tuple[int, int], Tuple[float, float]],
        warm_bound: Optional[float],
        incumbent: Optional[Placement],
        stats: Dict[str, object],
    ) -> Placement:
        avail = [cluster.available_cpu(m) for m in machines]
        mach_index = {m: i for i, m in enumerate(machines)}
        feasible = cpu_feasible_machines(app, cluster)

        restrict = (
            self._active_candidate_k is not None
            and self._active_candidate_k < len(machines)
        )
        candidates = self._candidate_machines(
            app, tasks, machines, mach_index, feasible, profile, incumbent,
            restricted=restrict,
        )
        result, placement = self._build_and_solve_sparse(
            app, profile, tasks, machines, pairs, volumes, avail, candidates,
            warm_bound, stats,
        )
        if placement is None and restrict:
            # The restricted solve produced nothing — proven infeasible
            # (status 2) or budget exhausted before any incumbent.  The
            # full candidate set is exact and may well be feasible, so
            # retry without the restriction before giving up.
            stats["restriction_retried"] = True
            candidates = self._candidate_machines(
                app, tasks, machines, mach_index, feasible, profile, incumbent,
                restricted=False,
            )
            result, placement = self._build_and_solve_sparse(
                app, profile, tasks, machines, pairs, volumes, avail,
                candidates, warm_bound, stats,
            )
        self._record_solver_outcome(stats, result)
        if placement is None:
            return self._fallback_or_raise(app, incumbent, stats, result.message)
        return placement

    def _candidate_machines(
        self,
        app: Application,
        tasks: List[str],
        machines: List[str],
        mach_index: Dict[str, int],
        feasible: Dict[str, List[str]],
        profile: NetworkProfile,
        incumbent: Optional[Placement],
        restricted: bool,
    ) -> List[List[int]]:
        """CPU-feasible candidate machine indices per task (possibly top-k)."""
        top: Optional[set] = None
        if restricted:
            scores = machine_rate_scores(profile, machines, model=self.model)
            ranked = sorted(machines, key=lambda m: (-scores[m], m))
            top = set(ranked[: self._active_candidate_k])
        candidates: List[List[int]] = []
        for task in tasks:
            allowed = feasible[task]
            if not allowed:
                raise PlacementError(
                    f"task {task!r} of application {app.name!r} fits on no machine"
                )
            if top is not None:
                keep = set(top)
                if incumbent is not None:
                    keep.add(incumbent.machine_of(task))
                restricted_allowed = [m for m in allowed if m in keep]
                # The restriction must never manufacture failure: a task
                # whose feasible machines are disjoint from the top-k set
                # keeps its full CPU-feasible set.
                if restricted_allowed:
                    allowed = restricted_allowed
            candidates.append([mach_index[m] for m in allowed])
        return candidates

    def _build_and_solve_sparse(
        self,
        app: Application,
        profile: NetworkProfile,
        tasks: List[str],
        machines: List[str],
        pairs: List[Tuple[int, int]],
        volumes: Dict[Tuple[int, int], Tuple[float, float]],
        avail: List[float],
        candidates: List[List[int]],
        warm_bound: Optional[float],
        stats: Dict[str, object],
    ) -> Tuple[object, Optional[Placement]]:
        n_tasks = len(tasks)
        cpu = [app.cpu_demand(t) for t in tasks]
        intra = profile.intra_vm_rate_bps

        # ----- x columns: only CPU-feasible (task, machine) assignments.
        x_col: Dict[Tuple[int, int], int] = {}
        for t in range(n_tasks):
            for m in candidates[t]:
                x_col[(t, m)] = len(x_col)
        n_x = len(x_col)

        if self.model == "hose":
            hose = [profile.hose_rate(m) for m in machines]

        # ----- product columns, pruned and continuous.  ``bneck`` accumulates
        # each bottleneck constraint's (column, coefficient) entries keyed by
        # bottleneck id; ``lin_rows`` collects the products' linearisation
        # rows as (cols, coefs, ub).
        #
        # Under the hose model the egress term of machine ``a`` for pair
        # ``(i, j)`` is ``x_ia * (1 - x_ja)`` — it does not depend on *where*
        # the peer sits, only on whether it is colocated — so one variable
        # ``w >= x_ia - x_ja`` per (pair, machine) replaces the M-wide
        # ``z_imjn`` slab, with a tight two-term linearisation.  The pipe
        # model's per-pair products are collapsed the Glover way: one
        # continuous ``g_{s,a,b}`` per (sender task, machine pair) carries
        # the bytes task ``s`` sends over link ``(a, b)``, bounded below by
        # ``sum_t vol(s->t) * x_tb - V * (1 - x_sa)`` — exact at integral
        # assignments, O(T*M^2) columns instead of O(P*M^2).
        n_aux = 0
        aux_upper: List[float] = []
        lin_rows: List[Tuple[List[int], List[float], float]] = []
        agg_rows: List[Tuple[List[int], List[float], float]] = []
        bneck: Dict[Tuple, List[Tuple[int, float]]] = {}

        def bneck_add(key: Tuple, col: int, coef: float) -> None:
            bneck.setdefault(key, []).append((col, coef))

        def new_aux(ub: float = 1.0) -> int:
            nonlocal n_aux
            aux_upper.append(ub)
            n_aux += 1
            return n_x + n_aux - 1

        for i, j in pairs:
            fwd, rev = volumes[(i, j)]
            cand_i, cand_j = set(candidates[i]), set(candidates[j])
            if self.model == "hose":
                # Egress of a: fwd * x_ia * (1 - x_ja)  +  rev * x_ja * (1 - x_ia).
                for sender, peer, volume in ((i, j, fwd), (j, i, rev)):
                    if volume <= 0:
                        continue
                    for a in candidates[sender]:
                        if math.isinf(hose[a]):
                            continue
                        coef = volume * BITS_PER_BYTE / hose[a]
                        if a not in (cand_i if peer == i else cand_j):
                            # Peer can never sit on a: the product is x itself.
                            bneck_add((0, a), x_col[(sender, a)], coef)
                            continue
                        col = new_aux()
                        lin_rows.append(
                            (
                                [x_col[(sender, a)], x_col[(peer, a)], col],
                                [1.0, -1.0, -1.0],
                                0.0,  # x_sender - x_peer - w <= 0
                            )
                        )
                        bneck_add((0, a), col, coef)
            # (Pipe-model inter-machine terms are aggregated per sender
            # below, outside this per-pair loop.)

            # Colocation term, shared by both models (finite intra rate only).
            if not math.isinf(intra):
                for a in cand_i & cand_j:
                    if cpu[i] + cpu[j] > avail[a] + _EPS:
                        continue  # colocation never CPU-feasible
                    col = new_aux()
                    lin_rows.append(
                        (
                            [x_col[(i, a)], x_col[(j, a)], col],
                            [1.0, 1.0, -1.0],
                            1.0,
                        )
                    )
                    bneck_add((2, a), col, (fwd + rev) * BITS_PER_BYTE / intra)

        if self.model == "pipe":
            # Per-sender directed volumes (both orientations of each pair).
            out_vol: List[Dict[int, float]] = [dict() for _ in range(n_tasks)]
            for i, j in pairs:
                fwd, rev = volumes[(i, j)]
                if fwd > 0:
                    out_vol[i][j] = out_vol[i].get(j, 0.0) + fwd
                if rev > 0:
                    out_vol[j][i] = out_vol[j].get(i, 0.0) + rev
            cand_sets = [set(c) for c in candidates]
            for s in range(n_tasks):
                if not out_vol[s]:
                    continue
                recv = sorted(out_vol[s].items())
                for a in candidates[s]:
                    for b in range(len(machines)):
                        if b == a:
                            continue  # colocated peers use the intra block
                        rate_ab = profile.rate(machines[a], machines[b])
                        if math.isinf(rate_ab):
                            continue
                        # g carries *seconds* of transfer on (a, b), not
                        # bytes: volumes ~1e9 against bottleneck coefs
                        # ~1e-8 span a range HiGHS mis-solves.
                        coef_ab = BITS_PER_BYTE / rate_ab
                        terms = [
                            (t, v * coef_ab) for t, v in recv
                            if b in cand_sets[t]
                        ]
                        if not terms:
                            continue
                        big_m = sum(v for _, v in terms)
                        col = new_aux(ub=big_m)
                        # g >= sum_t sec(s->t) * x_tb - big_m * (1 - x_sa),
                        # i.e. sum_t sec * x_tb + big_m * x_sa - g <= big_m.
                        agg_rows.append(
                            (
                                [x_col[(t, b)] for t, _ in terms]
                                + [x_col[(s, a)], col],
                                [v for _, v in terms] + [big_m, -1.0],
                                big_m,
                            )
                        )
                        bneck_add((1, a, b), col, 1.0)

        t_col = n_x + n_aux
        n_vars = t_col + 1

        # ----- rows, assembled as one COO triplet batch.
        data: List[float] = []
        row_idx: List[int] = []
        col_idx: List[int] = []
        row_lbs: List[float] = []
        row_ubs: List[float] = []

        def add_row(cols: List[int], coefs: List[float], lb: float, ub: float):
            r = len(row_lbs)
            row_idx.extend([r] * len(cols))
            col_idx.extend(cols)
            data.extend(coefs)
            row_lbs.append(lb)
            row_ubs.append(ub)

        # Each task on exactly one machine.
        for t in range(n_tasks):
            cols = [x_col[(t, m)] for m in candidates[t]]
            add_row(cols, [1.0] * len(cols), 1.0, 1.0)

        # CPU capacity, only where it can bind.
        for m in range(len(machines)):
            cols = [x_col[(t, m)] for t in range(n_tasks) if (t, m) in x_col]
            demand = [cpu[t] for t in range(n_tasks) if (t, m) in x_col]
            if cols and sum(demand) > avail[m] + _EPS:
                add_row(cols, demand, -np.inf, avail[m])

        # Product linearisation, one row per auxiliary column, appended as a
        # single triplet block (every row has exactly three entries).
        if lin_rows:
            base = len(row_lbs)
            rows_arr = np.arange(base, base + len(lin_rows))
            row_idx.extend(np.repeat(rows_arr, 3).tolist())
            col_idx.extend(
                np.asarray([cols for cols, _, _ in lin_rows]).ravel().tolist()
            )
            data.extend(
                np.asarray([coefs for _, coefs, _ in lin_rows]).ravel().tolist()
            )
            row_lbs.extend([-np.inf] * len(lin_rows))
            row_ubs.extend([ub for _, _, ub in lin_rows])

        # Sender-aggregation rows (pipe model), variable width.
        for cols, coefs, ub in agg_rows:
            add_row(cols, coefs, -np.inf, ub)

        # Bottleneck rows: sum(coef * z) - T <= 0, deterministic order.
        for key in sorted(bneck):
            entries = bneck[key]
            cols = [col for col, _ in entries] + [t_col]
            coefs = [coef for _, coef in entries] + [-1.0]
            add_row(cols, coefs, -np.inf, 0.0)

        # Symmetry breaking over interchangeable machines.
        n_classes = 0
        if self.symmetry_breaking:
            classes = self._interchangeable_classes(
                machines, avail, candidates, profile
            )
            n_classes = len(classes)
            for members in classes:
                class_tasks = sorted(
                    t for t in range(n_tasks) if (t, members[0]) in x_col
                )
                for prev, cur in zip(members, members[1:]):
                    earlier: List[int] = []
                    for t in class_tasks:
                        # Task t may use `cur` only if an earlier task uses
                        # `prev` — the lexicographic representative.
                        cols = [x_col[(t, cur)]] + [x_col[(e, prev)] for e in earlier]
                        coefs = [1.0] + [-1.0] * len(earlier)
                        add_row(cols, coefs, -np.inf, 0.0)
                        earlier.append(t)

        integrality = np.zeros(n_vars)
        integrality[:n_x] = 1.0
        upper = np.ones(n_vars)
        if aux_upper:
            upper[n_x:t_col] = aux_upper
        upper[t_col] = self._warm_upper(warm_bound)

        stats.update(
            {
                "n_vars": n_vars,
                "n_rows": len(row_lbs),
                "n_binaries": n_x,
                "n_products": n_aux,
                "symmetry_classes": n_classes,
            }
        )
        result = self._run_milp(
            n_vars, t_col, integrality, upper,
            (data, row_idx, col_idx), row_lbs, row_ubs,
        )
        if result.x is None:
            return result, None
        assignments: Dict[str, str] = {}
        for t, task in enumerate(tasks):
            values = [result.x[x_col[(t, m)]] for m in candidates[t]]
            assignments[task] = machines[candidates[t][int(np.argmax(values))]]
        return result, Placement(app_name=app.name, assignments=assignments)

    def _interchangeable_classes(
        self,
        machines: List[str],
        avail: List[float],
        candidates: List[List[int]],
        profile: NetworkProfile,
    ) -> List[List[int]]:
        """Maximal groups of machines the objective cannot tell apart.

        Machines are grouped greedily in index order; a machine joins a
        class only if it is pairwise interchangeable with *every* member
        (exact float equality — anything looser would trade exactness for
        pruning).  Classes of one are dropped.
        """
        task_sets: Dict[int, frozenset] = {}
        for m in range(len(machines)):
            task_sets[m] = frozenset(
                t for t, cand in enumerate(candidates) if m in cand
            )
        classes: List[List[int]] = []
        for m in range(len(machines)):
            placed = False
            for members in classes:
                if (
                    avail[m] == avail[members[0]]
                    and task_sets[m] == task_sets[members[0]]
                    and all(
                        self._interchangeable(machines, other, m, profile)
                        for other in members
                    )
                ):
                    members.append(m)
                    placed = True
                    break
            if not placed:
                classes.append([m])
        return [members for members in classes if len(members) > 1]

    def _interchangeable(
        self, machines: List[str], a: int, b: int, profile: NetworkProfile
    ) -> bool:
        ma, mb = machines[a], machines[b]
        if self.model == "hose":
            # The hose objective sees a machine only through its egress cap
            # (intra-VM rate is global), so equal hose rates suffice.
            return profile.hose_rate(ma) == profile.hose_rate(mb)
        if profile.rate(ma, mb) != profile.rate(mb, ma):
            return False
        for other in machines:
            if other in (ma, mb):
                continue
            if profile.rate(ma, other) != profile.rate(mb, other):
                return False
            if profile.rate(other, ma) != profile.rate(other, mb):
                return False
        return True

    # ------------------------------------------------------------- dense MILP
    def _solve_dense(
        self,
        app: Application,
        cluster: ClusterState,
        profile: NetworkProfile,
        tasks: List[str],
        machines: List[str],
        pairs: List[Tuple[int, int]],
        volumes: Dict[Tuple[int, int], Tuple[float, float]],
        warm_bound: Optional[float],
        incumbent: Optional[Placement],
        stats: Dict[str, object],
    ) -> Placement:
        """The original full product grid (the A/B reference formulation)."""
        n_tasks, n_machines = len(tasks), len(machines)
        n_x = n_tasks * n_machines
        n_z = len(pairs) * n_machines * n_machines
        n_vars = n_x + n_z + 1  # + the completion-time variable.
        t_col = n_vars - 1

        def x_col(task: int, machine: int) -> int:
            return task * n_machines + machine

        def pair_col(pair_idx: int, machine_a: int, machine_b: int) -> int:
            return n_x + (pair_idx * n_machines + machine_a) * n_machines + machine_b

        rows: List[Tuple[Dict[int, float], float, float]] = []  # (coeffs, lb, ub)

        # Each task is placed on exactly one machine.
        for t in range(n_tasks):
            rows.append(({x_col(t, m): 1.0 for m in range(n_machines)}, 1.0, 1.0))

        # CPU capacity per machine.
        for m, machine in enumerate(machines):
            coeffs = {x_col(t, m): app.cpu_demand(tasks[t]) for t in range(n_tasks)}
            rows.append((coeffs, -np.inf, cluster.available_cpu(machine)))

        # Product linearisation for every communicating pair.
        for p, (i, j) in enumerate(pairs):
            for a in range(n_machines):
                for b in range(n_machines):
                    zc = pair_col(p, a, b)
                    rows.append(({zc: 1.0, x_col(i, a): -1.0}, -np.inf, 0.0))
                    rows.append(({zc: 1.0, x_col(j, b): -1.0}, -np.inf, 0.0))
                    rows.append(
                        ({x_col(i, a): 1.0, x_col(j, b): 1.0, zc: -1.0}, -np.inf, 1.0)
                    )

        # Completion-time (bottleneck) constraints.
        intra_rate = profile.intra_vm_rate_bps
        if self.model == "hose":
            for a, machine_a in enumerate(machines):
                rate = profile.hose_rate(machine_a)
                if math.isinf(rate):
                    continue
                coeffs: Dict[int, float] = {t_col: -1.0}
                for p, (i, j) in enumerate(pairs):
                    fwd, rev = volumes[(i, j)]
                    for b in range(n_machines):
                        if b == a:
                            continue
                        if fwd > 0:
                            col = pair_col(p, a, b)
                            coeffs[col] = coeffs.get(col, 0.0) + fwd * BITS_PER_BYTE / rate
                        if rev > 0:
                            col = pair_col(p, b, a)
                            coeffs[col] = coeffs.get(col, 0.0) + rev * BITS_PER_BYTE / rate
                rows.append((coeffs, -np.inf, 0.0))
        else:  # pipe
            for a, machine_a in enumerate(machines):
                for b, machine_b in enumerate(machines):
                    if a == b:
                        continue
                    rate = profile.rate(machine_a, machine_b)
                    if math.isinf(rate):
                        continue
                    coeffs = {t_col: -1.0}
                    for p, (i, j) in enumerate(pairs):
                        fwd, rev = volumes[(i, j)]
                        if fwd > 0:
                            col = pair_col(p, a, b)
                            coeffs[col] = coeffs.get(col, 0.0) + fwd * BITS_PER_BYTE / rate
                        if rev > 0:
                            col = pair_col(p, b, a)
                            coeffs[col] = coeffs.get(col, 0.0) + rev * BITS_PER_BYTE / rate
                    rows.append((coeffs, -np.inf, 0.0))

        # Intra-machine transfers (only matter when the intra-VM rate is finite).
        if not math.isinf(intra_rate):
            for a in range(n_machines):
                coeffs = {t_col: -1.0}
                for p, (i, j) in enumerate(pairs):
                    fwd, rev = volumes[(i, j)]
                    col = pair_col(p, a, a)
                    total = (fwd + rev) * BITS_PER_BYTE / intra_rate
                    if total > 0:
                        coeffs[col] = coeffs.get(col, 0.0) + total
                rows.append((coeffs, -np.inf, 0.0))

        data, row_idx, col_idx, lbs, ubs = [], [], [], [], []
        for r, (coeffs, lb, ub) in enumerate(rows):
            for col, value in coeffs.items():
                row_idx.append(r)
                col_idx.append(col)
                data.append(value)
            lbs.append(lb)
            ubs.append(ub)

        integrality = np.ones(n_vars)
        integrality[t_col] = 0
        upper = np.ones(n_vars)
        upper[t_col] = self._warm_upper(warm_bound)
        stats.update(
            {
                "n_vars": n_vars,
                "n_rows": len(rows),
                "n_binaries": n_vars - 1,
                "n_products": n_z,
                "symmetry_classes": 0,
            }
        )
        result = self._run_milp(
            n_vars, t_col, integrality, upper,
            (data, row_idx, col_idx), lbs, ubs,
        )
        self._record_solver_outcome(stats, result)
        if result.x is None:
            return self._fallback_or_raise(app, incumbent, stats, result.message)
        assignments: Dict[str, str] = {}
        for t, task in enumerate(tasks):
            values = [result.x[x_col(t, m)] for m in range(n_machines)]
            assignments[task] = machines[int(np.argmax(values))]
        return Placement(app_name=app.name, assignments=assignments)


class BruteForcePlacer(Placer):
    """Enumerate every CPU-feasible assignment and keep the best one.

    Only suitable for tiny instances (``machines ** tasks`` assignments are
    enumerated); used to validate the MILP formulation in tests.
    """

    name = "brute-force"

    def __init__(self, model: str = "hose", max_assignments: int = 2_000_000):
        if model not in ("hose", "pipe"):
            raise PlacementError(f"unknown rate model {model!r}")
        self.model = model
        self.max_assignments = max_assignments

    def place(
        self,
        app: Application,
        cluster: ClusterState,
        profile: Optional[NetworkProfile] = None,
    ) -> Placement:
        if profile is None:
            raise PlacementError("the brute-force placer needs a network profile")
        self.check_feasible(app, cluster)
        tasks = app.task_names
        machines = cluster.machine_names()
        total = len(machines) ** len(tasks)
        if total > self.max_assignments:
            raise PlacementError(
                f"brute force would enumerate {total} assignments "
                f"(limit {self.max_assignments})"
            )

        best_assignment: Optional[Dict[str, str]] = None
        best_time = math.inf
        available = {m: cluster.available_cpu(m) for m in machines}
        for combo in itertools.product(machines, repeat=len(tasks)):
            usage: Dict[str, float] = {}
            feasible = True
            for task, machine in zip(tasks, combo):
                usage[machine] = usage.get(machine, 0.0) + app.cpu_demand(task)
                if usage[machine] > available[machine] + _EPS:
                    feasible = False
                    break
            if not feasible:
                continue
            assignment = dict(zip(tasks, combo))
            completion = estimate_completion_time(
                assignment, app, profile, model=self.model
            )
            if completion < best_time - _EPS:
                best_time = completion
                best_assignment = assignment
        if best_assignment is None:
            raise PlacementError(
                f"no CPU-feasible assignment exists for application {app.name!r}"
            )
        placement = Placement(app_name=app.name, assignments=best_assignment)
        validate_placement(placement, app, cluster)
        return placement
