"""Flow descriptors used by the fluid simulator.

A :class:`Flow` is a transfer of bytes between two hosts (or within one
host).  Flows can be *finite* (a known number of bytes, e.g. a task-to-task
transfer from an application traffic matrix) or *unbounded* (backlogged
cross traffic that exists between a start and an end time, as in the ON/OFF
background sources of Figure 4).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SimulationError


class FlowState(enum.Enum):
    """Lifecycle of a flow inside the fluid simulator."""

    PENDING = "pending"
    ACTIVE = "active"
    COMPLETED = "completed"
    STOPPED = "stopped"


@dataclass
class Flow:
    """A single transfer between two endpoints.

    Attributes:
        flow_id: unique identifier.
        src: source host name.
        dst: destination host name (may equal ``src`` for colocated tasks).
        size_bytes: bytes to transfer; ``None`` for an unbounded
            (backlogged) flow that only stops at ``end_time``.
        start_time: simulation time at which the flow begins.
        end_time: for unbounded flows, the time at which the source stops
            sending; ignored for finite flows.
        max_rate_bps: optional application-level cap on the flow's rate.
        tag: free-form label (application name, "cross-traffic", ...).
    """

    flow_id: str
    src: str
    dst: str
    size_bytes: Optional[float] = None
    start_time: float = 0.0
    end_time: Optional[float] = None
    max_rate_bps: Optional[float] = None
    tag: str = ""

    def __post_init__(self) -> None:
        if self.size_bytes is not None and self.size_bytes < 0:
            raise SimulationError(
                f"flow {self.flow_id!r}: size_bytes must be >= 0"
            )
        if self.size_bytes is None and self.end_time is None:
            raise SimulationError(
                f"flow {self.flow_id!r}: an unbounded flow needs an end_time"
            )
        if self.start_time < 0:
            raise SimulationError(
                f"flow {self.flow_id!r}: start_time must be >= 0"
            )
        if self.end_time is not None and self.end_time < self.start_time:
            raise SimulationError(
                f"flow {self.flow_id!r}: end_time precedes start_time"
            )
        if self.max_rate_bps is not None and self.max_rate_bps <= 0:
            raise SimulationError(
                f"flow {self.flow_id!r}: max_rate_bps must be positive"
            )

    @property
    def is_unbounded(self) -> bool:
        """True for backlogged flows without a byte count."""
        return self.size_bytes is None

    @property
    def is_intra_host(self) -> bool:
        """True when source and destination are the same physical machine."""
        return self.src == self.dst

    def remaining_or_inf(self) -> float:
        """Bytes remaining for finite flows, ``inf`` for unbounded ones."""
        return math.inf if self.size_bytes is None else float(self.size_bytes)
