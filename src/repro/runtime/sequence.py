"""Sequential application arrival and placement (paper §2.4, §6.3).

Applications arrive one by one, ordered by their observed start times, and
are placed as they arrive.  When application ``k`` arrives:

1. the flows of previously placed applications are simulated up to the
   arrival time, so we know which applications are still running (they keep
   their CPU) and which transfers are still in flight (they are the cross
   traffic the new measurement sees);
2. Choreo re-measures the network with that cross traffic present;
3. the new application is placed on the machines' remaining CPU.

Once every application has been placed, all flows are executed together and
the per-application running time is the time from its arrival to the
completion of its last transfer.  The §6.3 comparison sums these running
times per placement algorithm.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cloud.provider import CloudProvider, VMFlow
from repro.core.measurement.orchestrator import MeasurementPlan, NetworkMeasurer
from repro.core.network_profile import NetworkProfile
from repro.core.placement.base import ClusterState, Placement, Placer
from repro.errors import PlacementError, SimulationError
from repro.runtime.executor import ApplicationRun, placement_to_flows, run_applications
from repro.workloads.application import Application


@dataclass
class SequenceResult:
    """Outcome of placing and running a sequence of applications."""

    runs: Dict[str, ApplicationRun]
    placements: Dict[str, Placement]
    profiles: Dict[str, Optional[NetworkProfile]] = field(default_factory=dict)
    #: Host wall-clock spent measuring and placing (simulation excluded).
    placement_wall_s: float = 0.0

    @property
    def total_running_time(self) -> float:
        """Sum of per-application running times (the §6.3 comparison metric)."""
        return sum(run.duration for run in self.runs.values())

    def duration_of(self, app_name: str) -> float:
        """Running time of one application."""
        try:
            return self.runs[app_name].duration
        except KeyError as exc:
            raise SimulationError(f"unknown application {app_name!r}") from exc


class SequentialPlacementRunner:
    """Places applications in arrival order and runs the whole sequence."""

    def __init__(
        self,
        provider: CloudProvider,
        cluster: ClusterState,
        placer: Placer,
        measurement: Optional[MeasurementPlan] = None,
        measure_network: bool = True,
        background: Sequence[VMFlow] = (),
    ):
        """
        Args:
            provider: the cloud the applications run on.
            cluster: the tenant's machines (VMs).
            placer: the placement algorithm under test.
            measurement: measurement plan; the default uses packet trains and
                does *not* advance the provider clock, because the paper's
                comparison charges the same measurement time to every scheme.
            measure_network: set to False for network-oblivious baselines to
                skip the (useless for them) measurement campaign entirely.
            background: another tenant's flows sharing the network for the
                whole sequence; they load the simulated transfers and, while
                still running at an arrival, appear as cross traffic to that
                arrival's measurement.
        """
        self.provider = provider
        self.cluster = cluster
        self.placer = placer
        if measurement is None:
            measurement = MeasurementPlan(advance_clock=False)
        self.measurer = NetworkMeasurer(provider, plan=measurement)
        self.measure_network = measure_network
        self.background = list(background)

    # ------------------------------------------------------------------ run
    def run(self, apps: Sequence[Application]) -> SequenceResult:
        """Place the applications in start-time order and run them all."""
        if not apps:
            raise SimulationError("run needs at least one application")
        ordered = sorted(apps, key=lambda a: (a.start_time, a.name))
        names = {app.name for app in ordered}
        if len(names) != len(ordered):
            raise PlacementError("applications in a sequence must have unique names")

        placements: Dict[str, Placement] = {}
        profiles: Dict[str, Optional[NetworkProfile]] = {}
        placed_flows: List[VMFlow] = []
        app_cpu: Dict[str, Dict[str, float]] = {}
        app_of_flow: Dict[str, str] = {}
        placement_wall = 0.0

        for app in ordered:
            arrival = app.start_time
            background, finished_apps = self._state_at(placed_flows, app_of_flow, arrival)

            cpu_used: Dict[str, float] = {}
            for placed_name, usage in app_cpu.items():
                if placed_name in finished_apps:
                    continue
                for machine, cores in usage.items():
                    cpu_used[machine] = cpu_used.get(machine, 0.0) + cores
            cluster_now = self.cluster.with_usage(cpu_used)

            place_started = time.perf_counter()
            profile: Optional[NetworkProfile] = None
            if self.measure_network:
                profile = self.measurer.measure(
                    cluster_now.machine_names(), background=background
                )
            profiles[app.name] = profile

            placement = self.placer.place(app, cluster_now, profile)
            placement_wall += time.perf_counter() - place_started
            placements[app.name] = placement
            app_cpu[app.name] = placement.cpu_usage(app)

            flows, _ = placement_to_flows(placement, app, start_time=arrival)
            for flow in flows:
                app_of_flow[flow.flow_id] = app.name
            placed_flows.extend(flows)

        runs = run_applications(
            self.provider,
            placements=placements,
            apps=list(ordered),
            start_times={app.name: app.start_time for app in ordered},
            background=self.background,
        )
        return SequenceResult(
            runs=runs,
            placements=placements,
            profiles=profiles,
            placement_wall_s=placement_wall,
        )

    # ------------------------------------------------------------- internals
    def _state_at(
        self,
        placed_flows: Sequence[VMFlow],
        app_of_flow: Dict[str, str],
        time_s: float,
    ) -> Tuple[List[VMFlow], set]:
        """Which flows are still active at ``time_s``, and which apps finished.

        Returns ``(active_flows, finished_app_names)``.  Flows that have not
        started yet are neither active nor finished.  Background flows share
        the simulated network (slowing the placed flows down) and, while
        still running, count as active so measurements see them.
        """
        all_flows = list(placed_flows) + self.background
        if not all_flows:
            return [], set()
        partial = self.provider.simulate(all_flows, until=time_s)
        active: List[VMFlow] = []
        remaining_by_app: Dict[str, int] = {}
        for flow in placed_flows:
            app_name = app_of_flow[flow.flow_id]
            remaining_by_app.setdefault(app_name, 0)
            completed = flow.flow_id in partial.completion_times
            if completed:
                continue
            remaining_by_app[app_name] += 1
            if flow.start_time <= time_s:
                active.append(flow)
        for flow in self.background:
            if flow.flow_id in partial.completion_times:
                continue
            if flow.end_time is not None and flow.end_time <= time_s:
                continue
            if flow.start_time <= time_s:
                active.append(flow)
        finished = {name for name, count in remaining_by_app.items() if count == 0}
        return active, finished
