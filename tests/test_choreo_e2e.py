"""End-to-end ChoreoSystem tests on a synthetic provider: measure, place,
run, and the §2.4 sequential-arrival workflow."""

import pytest

from repro.cloud.ec2 import EC2Provider
from repro.core.choreo import ChoreoConfig, ChoreoSystem
from repro.core.measurement.orchestrator import MeasurementPlan
from repro.core.placement.base import validate_placement
from repro.core.placement.baselines import RandomPlacer
from repro.core.placement.greedy import GreedyPlacer
from repro.runtime.executor import run_application
from repro.runtime.sequence import SequentialPlacementRunner
from repro.units import GBYTE
from repro.workloads.patterns import mapreduce


@pytest.fixture
def provider():
    provider = EC2Provider(seed=42)
    provider.request_vms(5)
    return provider


def test_choreo_place_roundtrip(provider):
    system = ChoreoSystem(
        provider, config=ChoreoConfig(measurement=MeasurementPlan(advance_clock=False))
    )
    app = mapreduce("job", 3, 3, 2 * GBYTE, cpu_per_task=2.0)

    placement = system.place_application(app)

    cluster = system.cluster_state()
    validate_placement(placement, app, cluster)  # full coverage + CPU limits
    assert set(placement.assignments) == set(app.task_names)
    assert set(placement.machines_used()) <= set(cluster.machine_names())
    # The measurement the placement consumed is retained and covers the mesh.
    profile = system.last_profile
    assert profile is not None
    assert len(profile.pairs()) == 5 * 4
    assert profile.measurement_duration_s > 0

    run = run_application(provider, placement, app)
    assert run.completion_time >= run.start_time
    assert run.network_bytes + run.colocated_bytes == pytest.approx(app.total_bytes)


def test_sequential_runner_places_apps_in_arrival_order(provider):
    cluster_apps = [
        mapreduce("early", 2, 2, 1 * GBYTE, cpu_per_task=1.0, start_time=0.0),
        mapreduce("late", 2, 2, 1 * GBYTE, cpu_per_task=1.0, start_time=5.0),
    ]
    system = ChoreoSystem(provider)
    runner = SequentialPlacementRunner(
        provider, system.cluster_state(), GreedyPlacer(), measure_network=True
    )
    result = runner.run(cluster_apps)
    assert set(result.runs) == {"early", "late"}
    assert set(result.placements) == {"early", "late"}
    assert result.total_running_time >= 0.0
    for app in cluster_apps:
        assert result.runs[app.name].start_time == app.start_time


def test_sequence_background_flows_share_the_network():
    from repro.cloud.provider import VMFlow
    from repro.core.placement.baselines import RoundRobinPlacer

    def run_once(background):
        provider = EC2Provider(seed=7)
        provider.request_vms(4)
        system = ChoreoSystem(provider)
        runner = SequentialPlacementRunner(
            provider, system.cluster_state(), RoundRobinPlacer(),
            measure_network=False, background=background,
        )
        return runner.run([mapreduce("job", 2, 2, 2 * GBYTE, cpu_per_task=1.0)])

    quiet = run_once([])
    vms = [vm.name for vm in EC2Provider(seed=7).request_vms(4)]
    loaded = run_once(
        [VMFlow(flow_id="bg", src_vm=vms[0], dst_vm=vms[1],
                size_bytes=8 * GBYTE, tag="cross-traffic")]
    )
    # Identical seed and deterministic placer: the only difference is the
    # background load, which can only slow the application down.
    assert loaded.total_running_time >= quiet.total_running_time
    assert loaded.runs["job"].completion_time >= quiet.runs["job"].completion_time


def test_network_oblivious_sequence_skips_measurement(provider):
    apps = [mapreduce("solo", 2, 2, 1 * GBYTE, cpu_per_task=1.0)]
    system = ChoreoSystem(provider)
    runner = SequentialPlacementRunner(
        provider, system.cluster_state(), RandomPlacer(seed=0), measure_network=False
    )
    result = runner.run(apps)
    assert result.profiles["solo"] is None
    assert "solo" in result.runs
